"""Ring allreduce correctness, data-parallel steps, dynamic mini-batch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import MemoryModel, ring_allreduce_bytes
from repro.data import make_synthetic
from repro.distributed import (DynamicBatchAdjuster, allreduce_gradient_lists,
                               data_parallel_step, ring_allreduce)
from repro.nn import resnet20
from repro.optim import SGD

SMALL = dict(width_mult=0.25, input_hw=8)


class TestRingAllreduce:
    @pytest.mark.parametrize("p", [2, 3, 4, 7])
    @pytest.mark.parametrize("n", [1, 5, 64, 1000])
    def test_all_workers_get_mean(self, p, n, rng):
        bufs = [rng.normal(size=n) for _ in range(p)]
        expect = np.mean(bufs, axis=0)
        ring_allreduce(bufs)
        for b in bufs:
            np.testing.assert_allclose(b, expect, rtol=1e-10)

    def test_sum_mode(self, rng):
        bufs = [rng.normal(size=10) for _ in range(3)]
        expect = np.sum(bufs, axis=0)
        ring_allreduce(bufs, average=False)
        np.testing.assert_allclose(bufs[0], expect, rtol=1e-10)

    def test_single_worker_noop(self, rng):
        b = rng.normal(size=10)
        orig = b.copy()
        trace = ring_allreduce([b])
        np.testing.assert_array_equal(b, orig)
        assert trace.bytes_per_worker == 0.0

    def test_bytes_match_closed_form(self, rng):
        p, n = 4, 1000
        bufs = [rng.normal(size=n) for _ in range(p)]
        trace = ring_allreduce(bufs)
        expect = ring_allreduce_bytes(n * 8, p)
        assert trace.bytes_per_worker == pytest.approx(expect, rel=0.01)

    def test_steps_count(self, rng):
        bufs = [rng.normal(size=16) for _ in range(4)]
        assert ring_allreduce(bufs).steps == 6  # 2*(P-1)

    def test_mismatched_shapes_raise(self, rng):
        with pytest.raises(ValueError):
            ring_allreduce([rng.normal(size=3), rng.normal(size=4)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ring_allreduce([])

    def test_multidim_buffers(self, rng):
        bufs = [rng.normal(size=(3, 4, 5)) for _ in range(3)]
        expect = np.mean(bufs, axis=0)
        ring_allreduce(bufs)
        np.testing.assert_allclose(bufs[2], expect, rtol=1e-10)


class TestGradientListAllreduce:
    def test_reduces_heterogeneous_shapes(self, rng):
        shapes = [(3, 4), (7,), (2, 2, 2)]
        grads = [[rng.normal(size=s) for s in shapes] for _ in range(3)]
        expect = [np.mean([g[i] for g in grads], axis=0)
                  for i in range(len(shapes))]
        allreduce_gradient_lists(grads)
        for w in range(3):
            for i in range(len(shapes)):
                np.testing.assert_allclose(grads[w][i], expect[i],
                                           rtol=1e-10)

    def test_single_worker_zero_bytes(self, rng):
        grads = [[rng.normal(size=4)]]
        assert allreduce_gradient_lists(grads) == 0.0


class TestDataParallelStep:
    def test_matches_sequential_shard_average(self):
        """K-worker gradients must equal the mean of per-shard gradients."""
        ds = make_synthetic(10, 32, hw=8, seed=0)
        m = resnet20(10, **SMALL, seed=1)
        params = m.parameters()

        res, shards = data_parallel_step(m, ds.x, ds.y, workers=4)
        par_grads = [p.grad.copy() for p in params]

        # manual: average of per-shard backward passes
        from repro.tensor import Tensor
        from repro.tensor import functional as F
        bounds = np.cumsum([0] + shards)
        manual = [np.zeros_like(p.data) for p in params]
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            m.zero_grad()
            loss = F.cross_entropy(m(Tensor(ds.x[lo:hi])), ds.y[lo:hi])
            loss.backward()
            for acc, p in zip(manual, params):
                acc += p.grad / 4
        for got, want in zip(par_grads, manual):
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-6)

    def test_reports_comm_bytes(self):
        ds = make_synthetic(10, 16, hw=8, seed=0)
        m = resnet20(10, **SMALL)
        res, _ = data_parallel_step(m, ds.x, ds.y, workers=4)
        assert res.comm_bytes_per_worker > 0

    def test_single_worker_no_comm(self):
        ds = make_synthetic(10, 16, hw=8, seed=0)
        m = resnet20(10, **SMALL)
        res, _ = data_parallel_step(m, ds.x, ds.y, workers=1)
        assert res.comm_bytes_per_worker == 0.0

    def test_invalid_workers(self):
        ds = make_synthetic(10, 8, hw=8, seed=0)
        m = resnet20(10, **SMALL)
        with pytest.raises(ValueError):
            data_parallel_step(m, ds.x, ds.y, workers=0)

    def test_empty_batch_raises(self):
        ds = make_synthetic(10, 8, hw=8, seed=0)
        m = resnet20(10, **SMALL)
        with pytest.raises(ValueError, match="empty batch"):
            data_parallel_step(m, ds.x[:0], ds.y[:0], workers=2)

    def test_more_workers_than_samples_clamps(self):
        """Empty shards must not appear (and must not dilute the average):
        with workers > n the step runs exactly as with workers = n."""
        ds = make_synthetic(10, 3, hw=8, seed=0)
        m8 = resnet20(10, **SMALL, seed=1)
        res8, shards8 = data_parallel_step(m8, ds.x, ds.y, workers=8)
        m3 = resnet20(10, **SMALL, seed=1)
        res3, shards3 = data_parallel_step(m3, ds.x, ds.y, workers=3)
        assert shards8 == shards3 == [1, 1, 1]
        assert res8.loss == res3.loss
        assert res8.accuracy == res3.accuracy
        assert res8.comm_bytes_per_worker == res3.comm_bytes_per_worker
        for p8, p3 in zip(m8.parameters(), m3.parameters()):
            np.testing.assert_array_equal(p8.grad, p3.grad)

    def test_clamped_divisor_matches_single_worker_mean(self):
        """With n=1 the clamp makes any worker count equal the plain step —
        a skipped empty shard must not change the gradient divisor."""
        ds = make_synthetic(10, 1, hw=8, seed=0)
        mk = resnet20(10, **SMALL, seed=1)
        resk, shards = data_parallel_step(mk, ds.x, ds.y, workers=4)
        assert shards == [1]
        assert resk.comm_bytes_per_worker == 0.0
        m1 = resnet20(10, **SMALL, seed=1)
        res1, _ = data_parallel_step(m1, ds.x, ds.y, workers=1)
        assert resk.loss == res1.loss
        for pk, p1 in zip(mk.parameters(), m1.parameters()):
            np.testing.assert_array_equal(pk.grad, p1.grad)

    def test_optimizer_step_after_parallel(self):
        ds = make_synthetic(10, 16, hw=8, seed=0)
        m = resnet20(10, **SMALL)
        opt = SGD(m.parameters(), 0.1)
        before = m.stem.weight.data.copy()
        data_parallel_step(m, ds.x, ds.y, workers=2)
        opt.step()
        assert not np.array_equal(before, m.stem.weight.data)


class TestDynamicBatchAdjuster:
    def _adjuster(self, cap=60e6, **kw):
        return DynamicBatchAdjuster(MemoryModel(capacity_bytes=cap), **kw)

    def test_grows_batch_when_memory_allows(self):
        m = resnet20(10, **SMALL)
        adj = self._adjuster(cap=1e9, granularity=32, max_batch=512)
        a = adj.propose(m.graph, 64)
        assert a.new_batch > 64
        assert a.lr_scale == pytest.approx(a.new_batch / 64)

    def test_never_shrinks_by_default(self):
        m = resnet20(10, width_mult=1.0, input_hw=32)
        adj = self._adjuster(cap=1e6)  # tiny memory
        a = adj.propose(m.graph, 128)
        assert a.new_batch == 128

    def test_shrink_mode(self):
        m = resnet20(10, width_mult=1.0, input_hw=32)
        adj = self._adjuster(cap=5e6, shrink=True, granularity=8)
        a = adj.propose(m.graph, 128)
        assert a.new_batch <= 128

    def test_respects_max_batch(self):
        m = resnet20(10, **SMALL)
        adj = self._adjuster(cap=1e12, max_batch=256)
        assert adj.propose(m.graph, 64).new_batch == 256

    def test_sqrt_rule(self):
        m = resnet20(10, **SMALL)
        adj = self._adjuster(cap=1e9, lr_rule="sqrt", max_batch=256)
        a = adj.propose(m.graph, 64)
        assert a.lr_scale == pytest.approx((a.new_batch / 64) ** 0.5)

    def test_unknown_rule_raises(self):
        m = resnet20(10, **SMALL)
        adj = self._adjuster(lr_rule="bogus")
        with pytest.raises(ValueError):
            adj.propose(m.graph, 64)

    def test_unknown_source_raises(self):
        with pytest.raises(ValueError):
            self._adjuster(source="planned")

    def test_measured_source_schedule_at_least_analytical(self):
        """At equal capacity, a measured (planner) footprint below the
        analytical estimate must never produce a *smaller* batch."""
        from repro.costmodel.memory import activation_bytes_per_sample
        m = resnet20(10, **SMALL)
        cap = 80e6
        ana = self._adjuster(cap=cap, granularity=8, max_batch=4096)
        measured = DynamicBatchAdjuster(
            MemoryModel(capacity_bytes=cap), granularity=8, max_batch=4096,
            source="measured")
        # planner measured 0.8x of the analytical estimate
        measured.memory_model.observe(
            0.8 * activation_bytes_per_sample(m.graph))
        a = ana.propose(m.graph, 64)
        b = measured.propose(m.graph, 64)
        assert b.new_batch >= a.new_batch
        assert b.new_batch > 64

    def test_measured_source_without_observation_matches_analytical(self):
        m = resnet20(10, **SMALL)
        ana = self._adjuster(cap=80e6, granularity=8, max_batch=4096)
        meas = self._adjuster(cap=80e6, granularity=8, max_batch=4096,
                              source="measured")
        assert (meas.propose(m.graph, 64).new_batch
                == ana.propose(m.graph, 64).new_batch)

    def test_measured_shrink_mode(self):
        m = resnet20(10, **SMALL)
        adj = self._adjuster(cap=80e6, granularity=8, max_batch=4096,
                             shrink=True, source="measured")
        # planner measured a footprint far above the analytical estimate
        from repro.costmodel.memory import activation_bytes_per_sample
        adj.memory_model.observe(
            20.0 * activation_bytes_per_sample(m.graph))
        big = self._adjuster(cap=80e6, granularity=8,
                             max_batch=4096).propose(m.graph, 64).new_batch
        a = adj.propose(m.graph, big)
        assert a.new_batch < big

    def test_history_recorded(self):
        m = resnet20(10, **SMALL)
        adj = self._adjuster(cap=1e9)
        adj.propose(m.graph, 64)
        adj.propose(m.graph, 96)
        assert len(adj.history) == 2


@given(st.integers(2, 6), st.integers(1, 200))
@settings(max_examples=20, deadline=None)
def test_property_allreduce_preserves_mean(p, n):
    rng = np.random.default_rng(p * 1000 + n)
    bufs = [rng.normal(size=n) for _ in range(p)]
    mean_before = np.mean(bufs, axis=0)
    ring_allreduce(bufs)
    np.testing.assert_allclose(bufs[0], mean_before, rtol=1e-9)


@given(p=st.integers(2, 8), n=st.integers(1, 300),
       dtype=st.sampled_from(["float32", "float64"]))
@settings(max_examples=40, deadline=None)
def test_property_allreduce_bytes_closed_form(p, n, dtype):
    """Moved bytes equal 2(P-1)/P * payload *exactly*: every ring step ships
    each of the P chunks once, whatever the (uneven) chunking."""
    dt = np.dtype(dtype)
    rng = np.random.default_rng(p * 100000 + n)
    bufs = [rng.normal(size=n).astype(dt) for _ in range(p)]
    trace = ring_allreduce(bufs)
    assert trace.steps == 2 * (p - 1)
    assert trace.bytes_per_worker == pytest.approx(
        ring_allreduce_bytes(n * dt.itemsize, p), rel=1e-12)


@given(p=st.integers(2, 8),
       sizes=st.lists(st.integers(1, 40), min_size=1, max_size=5),
       dtype=st.sampled_from(["float32", "float64"]))
@settings(max_examples=40, deadline=None)
def test_property_gradient_lists_mean_and_bytes(p, sizes, dtype):
    """Uneven per-parameter payloads, both float widths: every worker ends
    with the mean, and the byte count matches the fused-payload closed form."""
    dt = np.dtype(dtype)
    rng = np.random.default_rng(p * 7919 + sum(sizes) * 31 + dt.itemsize)
    grads = [[rng.normal(size=s).astype(dt) for s in sizes]
             for _ in range(p)]
    expect = [np.mean([grads[w][i] for w in range(p)], axis=0)
              for i in range(len(sizes))]
    nbytes = allreduce_gradient_lists(grads)
    assert nbytes == pytest.approx(
        ring_allreduce_bytes(sum(sizes) * dt.itemsize, p), rel=1e-12)
    rtol = 1e-5 if dt == np.float32 else 1e-9
    for w in range(p):
        for i in range(len(sizes)):
            np.testing.assert_allclose(grads[w][i], expect[i],
                                       rtol=rtol, atol=rtol)
