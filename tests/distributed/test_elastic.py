"""Elastic multi-process engine: bit-exact parity with the in-process
simulation, resync through pruning surgery, and deterministic fault
injection (kill / hang / heartbeat corruption, graceful K -> K-1 -> 1)."""

import numpy as np
import pytest

from repro.data import make_synthetic
from repro.distributed import (ElasticEngine, FaultPlan, data_parallel_step)
from repro.nn import resnet20
from repro.optim import SGD
from repro.prune import prune_and_reconfigure

from ..conftest import sparsify_space

pytestmark = pytest.mark.distributed

SMALL = dict(width_mult=0.25, input_hw=8)
SGD_KW = dict(lr=0.05, momentum=0.9, weight_decay=5e-4)


@pytest.fixture(scope="module")
def batch():
    ds = make_synthetic(10, 32, hw=8, noise=0.8, seed=0)
    return ds.x, ds.y


def fresh():
    m = resnet20(10, **SMALL, seed=3)
    m.train()
    return m, SGD(m.parameters(), **SGD_KW)


def momentum_by_name(model, opt):
    out = {}
    for name, p in model.named_parameters():
        buf = opt.state_for(p)
        out[name] = None if buf is None else buf.copy()
    return out


def assert_state_equal(m1, opt1, m2, opt2):
    sd1, sd2 = m1.state_dict(), m2.state_dict()
    assert sd1.keys() == sd2.keys()
    for k in sd1:
        np.testing.assert_array_equal(sd1[k], sd2[k], err_msg=k)
    v1, v2 = momentum_by_name(m1, opt1), momentum_by_name(m2, opt2)
    assert v1.keys() == v2.keys()
    for k in v1:
        if v1[k] is None:
            assert v2[k] is None, k
        else:
            np.testing.assert_array_equal(v1[k], v2[k], err_msg=k)


def run_sim(batch, steps, workers_at=lambda s: 2, prune_at=None):
    """Reference: in-process simulation with a per-step worker count."""
    x, y = batch
    m, opt = fresh()
    out = []
    for s in range(steps):
        if prune_at is not None and s == prune_at:
            _prune(m, opt)
        res, _ = data_parallel_step(m, x, y, workers=workers_at(s))
        opt.step()
        out.append((res.loss, res.accuracy, res.comm_bytes_per_worker))
    return m, opt, out


def run_elastic(batch, steps, workers=2, plan=None, timeout=10.0,
                prune_at=None):
    x, y = batch
    m, opt = fresh()
    with ElasticEngine(m, workers=workers, heartbeat_timeout=timeout,
                       fault_plan=plan) as eng:
        out = []
        for s in range(steps):
            if prune_at is not None and s == prune_at:
                _prune(m, opt)
            r = eng.step(x, y)
            opt.step()
            out.append((r.loss, r.accuracy, r.comm_bytes_per_worker))
        failures = list(eng.failures)
        active = eng.active_workers
    return m, opt, out, failures, active


def _prune(m, opt):
    """Force a real structural reconfiguration (2 channels per free space)."""
    for sid, sp in list(m.graph.spaces.items()):
        if not sp.frozen:
            sparsify_space(m.graph, sid, [0, 1])
    rep = prune_and_reconfigure(m, opt, threshold=1e-3, remove_layers=True,
                                zero_sparse=True)
    assert rep.channels_pruned > 0


def metrics_equal(a, b):
    return [tuple(map(float, t)) for t in a] == \
        [tuple(map(float, t)) for t in b]


class TestParity:
    def test_bit_exact_vs_simulation(self, batch):
        ms, opts, outs = run_sim(batch, steps=4)
        me, opte, oute, failures, active = run_elastic(batch, steps=4)
        assert failures == [] and active == 2
        assert metrics_equal(outs, oute)
        assert_state_equal(ms, opts, me, opte)

    def test_three_workers(self, batch):
        ms, opts, outs = run_sim(batch, steps=3, workers_at=lambda s: 3)
        me, opte, oute, failures, active = run_elastic(batch, steps=3,
                                                       workers=3)
        assert failures == [] and active == 3
        assert metrics_equal(outs, oute)
        assert_state_equal(ms, opts, me, opte)

    def test_resync_after_pruning_bit_exact(self, batch):
        """Reconfiguration mid-run: replicas rebuilt from serialized state,
        trajectory stays bit-identical (and comm bytes shrink)."""
        ms, opts, outs = run_sim(batch, steps=6, prune_at=3)
        me, opte, oute, failures, _ = run_elastic(batch, steps=6, prune_at=3)
        assert failures == []
        assert metrics_equal(outs, oute)
        assert_state_equal(ms, opts, me, opte)
        assert oute[-1][2] < oute[0][2]  # pruned payload moves fewer bytes

    def test_more_workers_than_samples(self, batch):
        """Idle workers (k > n) neither stall nor perturb the result."""
        x, y = batch
        small = (x[:2], y[:2])
        ms, opts, outs = run_sim(small, steps=2, workers_at=lambda s: 2)
        me, opte, oute, failures, active = run_elastic(small, steps=2,
                                                       workers=4)
        assert failures == [] and active == 4
        assert metrics_equal(outs, oute)
        assert_state_equal(ms, opts, me, opte)


class TestFaults:
    def test_kill_at_start_equals_single_worker(self, batch):
        """Worker 1 dies on its first command: the whole run must equal a
        clean one-worker run bit for bit (step 0 retried on the survivor)."""
        ms, opts, outs = run_sim(batch, steps=3, workers_at=lambda s: 1)
        plan = FaultPlan().kill(1, at_step=0)
        me, opte, oute, failures, active = run_elastic(batch, steps=3,
                                                       plan=plan, timeout=5.0)
        assert active == 1
        assert [f.rank for f in failures] == [1]
        assert failures[0].step == 0 and failures[0].reason == "died"
        assert metrics_equal(outs, oute)
        assert_state_equal(ms, opts, me, opte)

    def test_kill_mid_run_equals_degraded_continuation(self, batch):
        """Kill at step 2 of 5: steps 0-1 are K=2, steps 2-4 must equal a
        clean K=1 continuation of the same coordinator state."""
        ms, opts, outs = run_sim(batch, steps=5,
                                 workers_at=lambda s: 2 if s < 2 else 1)
        plan = FaultPlan().kill(1, at_step=2)
        me, opte, oute, failures, active = run_elastic(batch, steps=5,
                                                       plan=plan, timeout=5.0)
        assert active == 1
        assert [(f.rank, f.step) for f in failures] == [(1, 2)]
        assert metrics_equal(outs, oute)
        assert_state_equal(ms, opts, me, opte)

    def test_hang_trips_heartbeat_timeout(self, batch):
        """A hung worker stops beating; the coordinator evicts it after the
        timeout and the run degrades exactly like a death."""
        ms, opts, outs = run_sim(batch, steps=3,
                                 workers_at=lambda s: 2 if s < 1 else 1)
        plan = FaultPlan().hang(1, at_step=1, seconds=120)
        me, opte, oute, failures, active = run_elastic(batch, steps=3,
                                                       plan=plan, timeout=0.8)
        assert active == 1
        assert [(f.rank, f.step, f.reason) for f in failures] == \
            [(1, 1, "heartbeat")]
        assert metrics_equal(outs, oute)
        assert_state_equal(ms, opts, me, opte)

    def test_corrupt_heartbeat_evicts(self, batch):
        """A garbage (NaN) heartbeat is indistinguishable from staleness:
        the worker is evicted even though its process is alive."""
        ms, opts, outs = run_sim(batch, steps=3,
                                 workers_at=lambda s: 2 if s < 1 else 1)
        plan = FaultPlan().corrupt_heartbeat(0, at_step=1)
        me, opte, oute, failures, active = run_elastic(batch, steps=3,
                                                       plan=plan, timeout=0.8)
        assert active == 1
        assert [(f.rank, f.reason) for f in failures] == [(0, "heartbeat")]
        assert metrics_equal(outs, oute)
        assert_state_equal(ms, opts, me, opte)

    def test_failure_during_reconfiguration_resync(self, batch):
        """Worker killed by the resync command itself (pruning barrier):
        the survivor resyncs and continues, equal to a clean degraded run."""
        def workers_at(s):
            return 2 if s < 3 else 1
        ms, opts, outs = run_sim(batch, steps=5, workers_at=workers_at,
                                 prune_at=3)
        plan = FaultPlan().kill(1, at_step=3)
        me, opte, oute, failures, active = run_elastic(
            batch, steps=5, plan=plan, timeout=5.0, prune_at=3)
        assert active == 1
        assert [(f.rank, f.step, f.phase) for f in failures] == \
            [(1, 3, "resync")]
        assert metrics_equal(outs, oute)
        assert_state_equal(ms, opts, me, opte)

    def test_all_workers_dead_raises(self, batch):
        x, y = batch
        m, opt = fresh()
        plan = FaultPlan().kill(0, at_step=1).kill(1, at_step=1)
        with ElasticEngine(m, workers=2, heartbeat_timeout=5.0,
                           fault_plan=plan) as eng:
            eng.step(x, y)
            with pytest.raises(RuntimeError, match="all elastic workers"):
                eng.step(x, y)

    def test_scripted_faults_are_deterministic(self, batch):
        """Two runs under the same fault plan produce identical metrics,
        identical failure records, and identical final state."""
        plan = FaultPlan().kill(1, at_step=1)
        a = run_elastic(batch, steps=4, plan=plan, timeout=5.0)
        b = run_elastic(batch, steps=4, plan=plan, timeout=5.0)
        assert metrics_equal(a[2], b[2])
        assert a[3] == b[3]
        assert_state_equal(a[0], a[1], b[0], b[1])


class TestEngineApi:
    def test_invalid_worker_count(self, batch):
        m, _ = fresh()
        with pytest.raises(ValueError):
            ElasticEngine(m, workers=0)

    def test_empty_batch_raises(self, batch):
        x, y = batch
        m, _ = fresh()
        with ElasticEngine(m, workers=2) as eng:
            with pytest.raises(ValueError, match="empty batch"):
                eng.step(x[:0], y[:0])

    def test_shutdown_idempotent(self, batch):
        x, y = batch
        m, _ = fresh()
        eng = ElasticEngine(m, workers=2)
        eng.step(x, y)
        eng.shutdown()
        eng.shutdown()
        assert eng.active_workers == 2  # back to configured (not started)
