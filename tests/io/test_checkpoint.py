"""Checkpointing of dynamically reconfigured models."""

import json
import os

import numpy as np
import pytest

from repro.io import (latest_checkpoint, load_checkpoint, read_meta,
                      restore_checkpoint, save_checkpoint)
from repro.nn import resnet20, resnet50_cifar, vgg11
from repro.optim import SGD
from repro.prune import prune_and_reconfigure
from repro.tensor import Tensor, no_grad

from ..conftest import sparsify_space


def _sparsify(model, frac=0.4, seed=0):
    rng = np.random.default_rng(seed)
    g = model.graph
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < frac
        kill[0] = False
        sparsify_space(g, sid, kill)


class TestCheckpointRoundtrip:
    def test_dense_model_roundtrip(self, tmp_path, rng):
        path = str(tmp_path / "ckpt.npz")
        m = resnet20(10, width_mult=0.25, input_hw=16, seed=3)
        save_checkpoint(path, m)
        m2, _, extra = load_checkpoint(
            path, lambda: resnet20(10, width_mult=0.25, input_hw=16, seed=0))
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        m.eval(), m2.eval()
        with no_grad():
            np.testing.assert_allclose(m(x).data, m2(x).data, rtol=1e-5)

    @pytest.mark.parametrize("factory", [resnet20, resnet50_cifar, vgg11])
    def test_pruned_model_roundtrip(self, factory, tmp_path, rng):
        path = str(tmp_path / "ckpt.npz")
        m = factory(10, width_mult=0.25, input_hw=16, seed=5)
        _sparsify(m)
        prune_and_reconfigure(m)
        save_checkpoint(path, m, extra={"epoch": 12})
        m2, _, extra = load_checkpoint(
            path, lambda: factory(10, width_mult=0.25, input_hw=16, seed=0))
        assert extra == {"epoch": 12}
        assert m2.num_parameters() == m.num_parameters()
        m2.graph.validate()
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        m.eval(), m2.eval()
        with no_grad():
            np.testing.assert_allclose(m(x).data, m2(x).data, rtol=1e-5,
                                       atol=1e-6)

    def test_layer_removal_survives_roundtrip(self, tmp_path, rng):
        path = str(tmp_path / "ckpt.npz")
        m = resnet50_cifar(10, width_mult=0.25, input_hw=16, seed=1)
        m.graph.conv_by_name("s2b1.conv1").conv.weight.data[:] = 0.0
        prune_and_reconfigure(m)
        assert m.graph.removed_layers() == 3
        save_checkpoint(path, m)
        m2, _, _ = load_checkpoint(
            path,
            lambda: resnet50_cifar(10, width_mult=0.25, input_hw=16, seed=0))
        assert m2.graph.removed_layers() == 3
        x = Tensor(rng.normal(size=(1, 3, 16, 16)).astype(np.float32))
        m.eval(), m2.eval()
        with no_grad():
            np.testing.assert_allclose(m(x).data, m2(x).data, rtol=1e-5,
                                       atol=1e-6)

    def test_optimizer_state_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        m = resnet20(10, width_mult=0.25, input_hw=8, seed=2)
        opt = SGD(m.parameters(), lr=0.03, momentum=0.8, weight_decay=1e-4)
        for p in opt.params:
            p.grad = np.ones_like(p.data)
        opt.step()
        save_checkpoint(path, m, optimizer=opt)
        m2, opt2, _ = load_checkpoint(
            path, lambda: resnet20(10, width_mult=0.25, input_hw=8, seed=0),
            with_optimizer=True)
        assert opt2.lr == pytest.approx(0.03)
        assert opt2.momentum == pytest.approx(0.8)
        for (n1, p1), (n2, p2) in zip(m.named_parameters(),
                                      m2.named_parameters()):
            np.testing.assert_allclose(opt.state_for(p1),
                                       opt2.state_for(p2), rtol=1e-6)

    def test_missing_optimizer_raises(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        m = resnet20(10, width_mult=0.25, input_hw=8)
        save_checkpoint(path, m)
        with pytest.raises(ValueError, match="no optimizer state"):
            load_checkpoint(path, lambda: resnet20(10, width_mult=0.25,
                                                   input_hw=8),
                            with_optimizer=True)

    def test_v1_checkpoint_still_loads(self, tmp_path, rng):
        """Backward compat: a format-1 archive (weights + structure +
        momentum only, written non-atomically by the old code) must load."""
        m = resnet20(10, width_mult=0.25, input_hw=16, seed=3)
        _sparsify(m)
        prune_and_reconfigure(m)
        # replicate the old v1 writer byte layout
        arrays = {f"state/{n}": a for n, a in m.state_dict().items()}
        meta = {
            "format_version": 1,
            "space_sizes": {str(sid): sp.size
                            for sid, sp in m.graph.spaces.items()},
            "inactive_paths": [p.name for p in m.graph.paths.values()
                               if not getattr(p.block, "active", True)],
            "extra": {"epoch": 7},
        }
        arrays["meta.json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8)
        path = str(tmp_path / "v1.npz")
        np.savez(path, **arrays)

        m2, _, extra = load_checkpoint(
            path, lambda: resnet20(10, width_mult=0.25, input_hw=16, seed=0))
        assert extra == {"epoch": 7}
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        m.eval(), m2.eval()
        with no_grad():
            np.testing.assert_allclose(m(x).data, m2(x).data, rtol=1e-5,
                                       atol=1e-6)
        # v1 carries no run state: the resume path must see that
        assert "train_state" not in read_meta(path)

    def test_unsupported_version_raises(self, tmp_path):
        m = resnet20(10, width_mult=0.25, input_hw=8)
        path = str(tmp_path / "weird.npz")
        save_checkpoint(path, m)
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta.json"]).decode())
        meta["format_version"] = 99
        data["meta.json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="unsupported checkpoint"):
            load_checkpoint(path, lambda: resnet20(10, width_mult=0.25,
                                                   input_hw=8))

    def test_training_resumes_after_load(self, tmp_path, tiny_train):
        """A loaded pruned model must train further without errors."""
        from repro.tensor import functional as F
        path = str(tmp_path / "ckpt.npz")
        m = resnet50_cifar(10, width_mult=0.25, input_hw=8, seed=4)
        _sparsify(m)
        opt = SGD(m.parameters(), 0.1, momentum=0.9)
        prune_and_reconfigure(m, opt)
        save_checkpoint(path, m, optimizer=opt)
        m2, opt2, _ = load_checkpoint(
            path, lambda: resnet50_cifar(10, width_mult=0.25, input_hw=8,
                                         seed=0), with_optimizer=True)
        x, y = tiny_train.x[:32], tiny_train.y[:32]
        loss = F.cross_entropy(m2(Tensor(x)), y)
        opt2.zero_grad()
        loss.backward()
        opt2.step()
        m2.graph.validate()


class TestAtomicWrites:
    def test_no_temp_file_left_after_save(self, tmp_path):
        m = resnet20(10, width_mult=0.25, input_hw=8)
        save_checkpoint(str(tmp_path / "ck.npz"), m)
        assert sorted(f.name for f in tmp_path.iterdir()) == ["ck.npz"]

    def test_crash_mid_write_preserves_previous_checkpoint(self, tmp_path,
                                                           monkeypatch):
        """A crash while serializing must leave the previous checkpoint
        intact: only the temp file is partially written."""
        path = str(tmp_path / "ck.npz")
        m = resnet20(10, width_mult=0.25, input_hw=8, seed=1)
        save_checkpoint(path, m, extra={"gen": 1})

        m2 = resnet20(10, width_mult=0.25, input_hw=8, seed=2)
        original_replace = os.replace

        def crash(*a, **kw):
            raise OSError("simulated crash before publish")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            save_checkpoint(path, m2, extra={"gen": 2})
        monkeypatch.setattr(os, "replace", original_replace)

        # previous checkpoint unharmed; the leftover is only the temp file
        _, _, extra = load_checkpoint(
            path, lambda: resnet20(10, width_mult=0.25, input_hw=8, seed=0))
        assert extra == {"gen": 1}
        leftovers = [f.name for f in tmp_path.iterdir() if f.name != "ck.npz"]
        assert leftovers == ["ck.npz.tmp.npz"]

        # a later save overwrites the stale temp file and succeeds
        save_checkpoint(path, m2, extra={"gen": 2})
        _, _, extra = load_checkpoint(
            path, lambda: resnet20(10, width_mult=0.25, input_hw=8, seed=0))
        assert extra == {"gen": 2}
        assert sorted(f.name for f in tmp_path.iterdir()) == ["ck.npz"]

    def test_latest_checkpoint_ignores_partial_temp_files(self, tmp_path):
        m = resnet20(10, width_mult=0.25, input_hw=8)
        save_checkpoint(str(tmp_path / "ckpt-ep00003.npz"), m)
        # a partial write a crash left behind, "newer" than the real one
        (tmp_path / "ckpt-ep00009.npz.tmp.npz").write_bytes(b"partial")
        assert latest_checkpoint(str(tmp_path)).endswith("ckpt-ep00003.npz")

    def test_latest_checkpoint_missing_dir(self, tmp_path):
        assert latest_checkpoint(str(tmp_path / "nope")) is None


class TestRestoreCheckpoint:
    def test_restore_in_place_with_train_state(self, tmp_path, rng):
        path = str(tmp_path / "ck.npz")
        m = resnet50_cifar(10, width_mult=0.25, input_hw=8, seed=4)
        _sparsify(m)
        opt = SGD(m.parameters(), 0.1, momentum=0.9)
        prune_and_reconfigure(m, opt)
        state = {"epoch": 3, "lr_scale": 2.0,
                 "loader": {"batch_size": 64}}
        save_checkpoint(path, m, optimizer=opt, train_state=state,
                        arrays={"tracker/history/c1": np.arange(6.0)})

        m2 = resnet50_cifar(10, width_mult=0.25, input_hw=8, seed=9)
        opt2 = SGD(m2.parameters(), 0.05, momentum=0.5)
        meta, arrays = restore_checkpoint(path, m2, opt2)
        assert meta["train_state"] == state
        np.testing.assert_array_equal(arrays["tracker/history/c1"],
                                      np.arange(6.0))
        # optimizer hyperparameters + param list follow the checkpoint
        assert opt2.lr == pytest.approx(0.1)
        assert opt2.momentum == pytest.approx(0.9)
        assert len(opt2.params) == len(m2.parameters())
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        m.eval(), m2.eval()
        with no_grad():
            np.testing.assert_allclose(m(x).data, m2(x).data, rtol=1e-5,
                                       atol=1e-6)

    def test_reserved_array_keys_rejected(self, tmp_path):
        m = resnet20(10, width_mult=0.25, input_hw=8)
        with pytest.raises(ValueError, match="reserved"):
            save_checkpoint(str(tmp_path / "ck.npz"), m,
                            arrays={"state/x": np.zeros(2)})


class TestInMemoryState:
    """dumps_state/loads_state — the elastic resync transport — must be
    bit-equivalent to an on-disk checkpoint round-trip."""

    def test_equivalent_to_file_roundtrip(self, tmp_path):
        from repro.io import dumps_state, loads_state
        m = resnet50_cifar(10, width_mult=0.25, input_hw=8, seed=4)
        _sparsify(m)
        opt = SGD(m.parameters(), 0.1, momentum=0.9)
        prune_and_reconfigure(m, opt)
        blob = dumps_state(m, opt)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, m, optimizer=opt)

        via_file = resnet50_cifar(10, width_mult=0.25, input_hw=8, seed=9)
        of = SGD(via_file.parameters(), 0.05)
        restore_checkpoint(path, via_file, of)
        via_blob = resnet50_cifar(10, width_mult=0.25, input_hw=8, seed=9)
        ob = SGD(via_blob.parameters(), 0.05)
        loads_state(blob, via_blob, ob)

        sd_f, sd_b = via_file.state_dict(), via_blob.state_dict()
        assert sd_f.keys() == sd_b.keys()
        for k in sd_f:
            np.testing.assert_array_equal(sd_f[k], sd_b[k], err_msg=k)
        assert ob.lr == of.lr and ob.momentum == of.momentum

    def test_monotone_replay_onto_partially_pruned_model(self):
        """A replica at the *previous* configuration is a valid restore
        target: structure replay only removes, never resurrects."""
        from repro.io import dumps_state, loads_state
        src = resnet50_cifar(10, width_mult=0.25, input_hw=8, seed=4)
        replica = resnet50_cifar(10, width_mult=0.25, input_hw=8, seed=4)
        _sparsify(src, frac=0.3, seed=1)
        prune_and_reconfigure(src)            # first prune: src only
        loads_state(dumps_state(src), replica)
        _sparsify(src, frac=0.3, seed=2)
        prune_and_reconfigure(src)            # second prune: replica lags
        loads_state(dumps_state(src), replica)
        sd_s, sd_r = src.state_dict(), replica.state_dict()
        assert sd_s.keys() == sd_r.keys()
        for k in sd_s:
            np.testing.assert_array_equal(sd_s[k], sd_r[k], err_msg=k)
        replica.graph.validate()
