"""Checkpointing of dynamically reconfigured models."""

import numpy as np
import pytest

from repro.io import load_checkpoint, save_checkpoint
from repro.nn import resnet20, resnet50_cifar, vgg11
from repro.optim import SGD
from repro.prune import prune_and_reconfigure
from repro.tensor import Tensor, no_grad

from ..conftest import sparsify_space


def _sparsify(model, frac=0.4, seed=0):
    rng = np.random.default_rng(seed)
    g = model.graph
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < frac
        kill[0] = False
        sparsify_space(g, sid, kill)


class TestCheckpointRoundtrip:
    def test_dense_model_roundtrip(self, tmp_path, rng):
        path = str(tmp_path / "ckpt.npz")
        m = resnet20(10, width_mult=0.25, input_hw=16, seed=3)
        save_checkpoint(path, m)
        m2, _, extra = load_checkpoint(
            path, lambda: resnet20(10, width_mult=0.25, input_hw=16, seed=0))
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        m.eval(), m2.eval()
        with no_grad():
            np.testing.assert_allclose(m(x).data, m2(x).data, rtol=1e-5)

    @pytest.mark.parametrize("factory", [resnet20, resnet50_cifar, vgg11])
    def test_pruned_model_roundtrip(self, factory, tmp_path, rng):
        path = str(tmp_path / "ckpt.npz")
        m = factory(10, width_mult=0.25, input_hw=16, seed=5)
        _sparsify(m)
        prune_and_reconfigure(m)
        save_checkpoint(path, m, extra={"epoch": 12})
        m2, _, extra = load_checkpoint(
            path, lambda: factory(10, width_mult=0.25, input_hw=16, seed=0))
        assert extra == {"epoch": 12}
        assert m2.num_parameters() == m.num_parameters()
        m2.graph.validate()
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        m.eval(), m2.eval()
        with no_grad():
            np.testing.assert_allclose(m(x).data, m2(x).data, rtol=1e-5,
                                       atol=1e-6)

    def test_layer_removal_survives_roundtrip(self, tmp_path, rng):
        path = str(tmp_path / "ckpt.npz")
        m = resnet50_cifar(10, width_mult=0.25, input_hw=16, seed=1)
        m.graph.conv_by_name("s2b1.conv1").conv.weight.data[:] = 0.0
        prune_and_reconfigure(m)
        assert m.graph.removed_layers() == 3
        save_checkpoint(path, m)
        m2, _, _ = load_checkpoint(
            path,
            lambda: resnet50_cifar(10, width_mult=0.25, input_hw=16, seed=0))
        assert m2.graph.removed_layers() == 3
        x = Tensor(rng.normal(size=(1, 3, 16, 16)).astype(np.float32))
        m.eval(), m2.eval()
        with no_grad():
            np.testing.assert_allclose(m(x).data, m2(x).data, rtol=1e-5,
                                       atol=1e-6)

    def test_optimizer_state_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        m = resnet20(10, width_mult=0.25, input_hw=8, seed=2)
        opt = SGD(m.parameters(), lr=0.03, momentum=0.8, weight_decay=1e-4)
        for p in opt.params:
            p.grad = np.ones_like(p.data)
        opt.step()
        save_checkpoint(path, m, optimizer=opt)
        m2, opt2, _ = load_checkpoint(
            path, lambda: resnet20(10, width_mult=0.25, input_hw=8, seed=0),
            with_optimizer=True)
        assert opt2.lr == pytest.approx(0.03)
        assert opt2.momentum == pytest.approx(0.8)
        for (n1, p1), (n2, p2) in zip(m.named_parameters(),
                                      m2.named_parameters()):
            np.testing.assert_allclose(opt.state_for(p1),
                                       opt2.state_for(p2), rtol=1e-6)

    def test_missing_optimizer_raises(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        m = resnet20(10, width_mult=0.25, input_hw=8)
        save_checkpoint(path, m)
        with pytest.raises(ValueError, match="no optimizer state"):
            load_checkpoint(path, lambda: resnet20(10, width_mult=0.25,
                                                   input_hw=8),
                            with_optimizer=True)

    def test_training_resumes_after_load(self, tmp_path, tiny_train):
        """A loaded pruned model must train further without errors."""
        from repro.tensor import functional as F
        path = str(tmp_path / "ckpt.npz")
        m = resnet50_cifar(10, width_mult=0.25, input_hw=8, seed=4)
        _sparsify(m)
        opt = SGD(m.parameters(), 0.1, momentum=0.9)
        prune_and_reconfigure(m, opt)
        save_checkpoint(path, m, optimizer=opt)
        m2, opt2, _ = load_checkpoint(
            path, lambda: resnet50_cifar(10, width_mult=0.25, input_hw=8,
                                         seed=0), with_optimizer=True)
        x, y = tiny_train.x[:32], tiny_train.y[:32]
        loss = F.cross_entropy(m2(Tensor(x)), y)
        opt2.zero_grad()
        loss.backward()
        opt2.step()
        m2.graph.validate()
