#!/usr/bin/env python
"""Multi-process PruneTrain with dynamic mini-batch adjustment.

Reproduces the paper's ImageNet-style deployment in miniature: data-parallel
worker *processes* with ring-allreduce gradient reduction through shared
memory (the elastic engine — replicas resync bit-exactly after every
pruning reconfiguration), a device memory-capacity model, and PruneTrain's
dynamic mini-batch growth (Sec. 4.3) — as pruning frees training memory,
the per-worker batch grows and the learning rate is scaled linearly,
cutting model-update communication frequency.

Pass ``--sim`` to use the in-process simulation instead (same results, bit
for bit — that equivalence is the elastic engine's acceptance test).

Usage:  python examples/distributed_training.py [--sim]
"""

import sys

from repro.costmodel import MemoryModel, iteration_memory_bytes
from repro.data import make_synthetic
from repro.distributed import DynamicBatchAdjuster
from repro.nn import resnet50_cifar
from repro.train import PruneTrainConfig, PruneTrainTrainer


def main() -> None:
    train = make_synthetic(100, 512, hw=12, noise=1.2, seed=0,
                           name="cifar100s")
    val = make_synthetic(100, 256, hw=12, noise=1.2, seed=1,
                         name="cifar100s-val")

    model = resnet50_cifar(100, width_mult=0.25, input_hw=12, seed=0)

    # Device memory sized so the initial batch just fits (the paper's
    # setup: start at the largest batch the GPU memory allows).
    start_batch = 32
    capacity = iteration_memory_bytes(model.graph, start_batch) * 1.1
    adjuster = DynamicBatchAdjuster(
        MemoryModel(capacity_bytes=capacity), granularity=8, max_batch=128)

    cfg = PruneTrainConfig(
        epochs=10, batch_size=start_batch, augment=False, log_every=2,
        workers=2,               # data-parallel worker processes
        dist_engine="sim" if "--sim" in sys.argv[1:] else "elastic",
        penalty_ratio=0.25, reconfig_interval=2,
        lambda_mode="rate", threshold=None, zero_sparse=True)
    trainer = PruneTrainTrainer(model, train, val, cfg,
                                batch_adjuster=adjuster)
    log = trainer.train()

    print("\nepoch | batch | mem (MB) | comm/epoch (MB) | val acc")
    for rec in log.records:
        print(f"{rec.epoch:5d} | {rec.batch_size:5d} | "
              f"{rec.memory_bytes / 1e6:8.1f} | "
              f"{rec.comm_bytes_epoch / 1e6:15.2f} | {rec.val_acc:.3f}")
    print(f"\nfinal LR scale from batch growth: {trainer.lr_scale:.2f}x")
    print("batch adjustments:",
          [(a.old_batch, a.new_batch) for a in adjuster.history
           if a.changed])


if __name__ == "__main__":
    main()
