#!/usr/bin/env python
"""Channel union vs channel gating on a pruned residual network.

Demonstrates the paper's Sec. 4.2 design study: after sparsification, a
short-cut CNN can be executed either with *channel gating* (select/scatter
indexing so every conv runs only dense channels — fewer FLOPs, but real
tensor-reshaping copies) or with *channel union* (keep the union of dense
channels per residual node — a few redundant FLOPs, zero indexing).  The
paper finds union faster in wall-clock despite more FLOPs; this example
measures both on our engine and verifies the two schemes compute the same
function.

Usage:  python examples/union_vs_gating.py
"""

import time

import numpy as np

from repro.costmodel import inference_flops
from repro.nn import resnet50_cifar
from repro.prune import (GatedPathRunner, UnionPathRunner,
                         zero_sparsified_groups)
from repro.tensor import Tensor, no_grad


def sparsify(model, fraction: float, seed: int = 0) -> None:
    """Zero ``fraction`` of channels consistently (writer+reader+BN)."""
    rng = np.random.default_rng(seed)
    g = model.graph
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < fraction
        kill[0] = False
        for node in g.writers(sid):
            node.conv.weight.data[kill] = 0.0
            node.bn.weight.data[kill] = 0.0
            node.bn.bias.data[kill] = 0.0
        for node in g.readers(sid):
            node.conv.weight.data[:, kill] = 0.0


def main() -> None:
    model = resnet50_cifar(10, width_mult=0.5, input_hw=16, seed=0)
    model.eval()
    sparsify(model, 0.5)
    zero_sparsified_groups(model.graph)
    g = model.graph

    dense_flops = inference_flops(g, mode="current")
    union_flops = inference_flops(g, mode="union")
    gating_flops = inference_flops(g, mode="gating")
    print(f"FLOPs  dense  : {dense_flops / 1e6:8.2f} M")
    print(f"FLOPs  union  : {union_flops / 1e6:8.2f} M "
          f"({100 * union_flops / dense_flops:.0f}%)")
    print(f"FLOPs  gating : {gating_flops / 1e6:8.2f} M "
          f"({100 * gating_flops / dense_flops:.0f}%)")
    print(f"union premium over gating: "
          f"{100 * (union_flops - gating_flops) / dense_flops:.1f}% "
          f"of dense\n")

    print("block   | union ms | gating ms | union speedup | outputs match")
    speedups = []
    with no_grad():
        for pid, path in g.paths.items():
            first = g.conv_by_name(path.conv_names[0])
            cin = g.spaces[first.in_space].size
            hw = first.out_hw * first.conv.stride
            x = Tensor(np.random.default_rng(pid).normal(
                size=(8, cin, hw, hw)).astype(np.float32))
            union = UnionPathRunner(g, path)
            gated = GatedPathRunner(g, path)
            yu = union.forward(x)
            yg = gated.forward(x)
            match = np.allclose(yu.data, yg.data, rtol=1e-4, atol=1e-5)
            tu = min(_t(lambda: union.forward(x)) for _ in range(3))
            tg = min(_t(lambda: gated.forward(x)) for _ in range(3))
            speedups.append(tg / tu)
            print(f"{path.name:7s} | {tu * 1e3:8.2f} | {tg * 1e3:9.2f} | "
                  f"{tg / tu:12.2f}x | {match}")
    print(f"\nmean union speedup: {np.mean(speedups):.2f}x "
          f"(the paper measures 1.9x on a V100)")


def _t(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


if __name__ == "__main__":
    main()
