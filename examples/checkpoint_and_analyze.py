#!/usr/bin/env python
"""Checkpoint a pruned model, reload it, and analyze its layer structure.

PruneTrain checkpoints must record *architecture*, not just weights: channel
counts change at every reconfiguration and whole residual paths can vanish.
This example trains briefly with aggressive pruning, saves/loads the pruned
checkpoint, verifies bit-exact behaviour, and prints the per-layer roofline
summary (the paper's compute-bound conv / bandwidth-bound BN split).

Usage:  python examples/checkpoint_and_analyze.py
"""

import os
import tempfile

import numpy as np

from repro.analysis import summary_table
from repro.costmodel import GTX_1080TI
from repro.data import make_synthetic
from repro.io import load_checkpoint, save_checkpoint
from repro.nn import resnet50_cifar
from repro.tensor import Tensor, no_grad
from repro.train import PruneTrainConfig, PruneTrainTrainer


def main() -> None:
    train = make_synthetic(10, 384, hw=10, noise=1.0, seed=0)
    val = make_synthetic(10, 128, hw=10, noise=1.0, seed=1)

    def factory():
        return resnet50_cifar(10, width_mult=0.25, input_hw=10, seed=0)

    model = factory()
    cfg = PruneTrainConfig(epochs=6, batch_size=48, augment=False,
                           log_every=2, penalty_ratio=0.3,
                           reconfig_interval=2, lambda_mode="rate",
                           decay_budget=8.0, zero_sparse=True)
    trainer = PruneTrainTrainer(model, train, val, cfg)
    trainer.train()
    print(f"\npruned model: {model.num_parameters()} params, "
          f"{model.graph.removed_layers()} layers removed")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "prunetrain.npz")
        save_checkpoint(path, model, optimizer=trainer.optimizer,
                        extra={"epochs_done": cfg.epochs,
                               "lambda": trainer.lasso.lam})
        print(f"checkpoint: {os.path.getsize(path) / 1e6:.2f} MB")

        loaded, opt, extra = load_checkpoint(path, factory,
                                             with_optimizer=True)
        x = Tensor(np.random.default_rng(0).normal(
            size=(4, 3, 10, 10)).astype(np.float32))
        model.eval(), loaded.eval()
        with no_grad():
            same = np.allclose(model(x).data, loaded(x).data, rtol=1e-5)
        print(f"reloaded model matches: {same}, extra={extra}")

    print("\nper-layer summary of the pruned model (1080 Ti roofline):")
    print(summary_table(loaded, GTX_1080TI))


if __name__ == "__main__":
    main()
