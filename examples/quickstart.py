#!/usr/bin/env python
"""Quickstart: train a CNN with PruneTrain and watch it shrink.

Runs the full Algorithm-1 loop — group-lasso regularization from the first
iteration, λ set automatically from the target penalty ratio (Eq. 3), and a
network reconfiguration every few epochs — on a small synthetic image
classification task, then compares cost and accuracy against the dense
baseline.

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro.costmodel import inference_flops, training_flops_per_sample
from repro.data import make_synthetic
from repro.nn import resnet32
from repro.train import (PruneTrainConfig, PruneTrainTrainer, Trainer,
                         TrainerConfig)


def main() -> None:
    rng_seed = 0
    train = make_synthetic(10, 768, hw=12, noise=1.0, seed=rng_seed,
                           name="cifar10s")
    val = make_synthetic(10, 256, hw=12, noise=1.0, seed=rng_seed + 1,
                         name="cifar10s-val")

    print("== dense baseline ==")
    dense_model = resnet32(10, width_mult=0.5, input_hw=12, seed=rng_seed)
    dense_cfg = TrainerConfig(epochs=12, batch_size=48, augment=False,
                              log_every=3)
    dense_log = Trainer(dense_model, train, val, dense_cfg).train()

    print("\n== PruneTrain ==")
    model = resnet32(10, width_mult=0.5, input_hw=12, seed=rng_seed)
    cfg = PruneTrainConfig(
        epochs=12, batch_size=48, augment=False, log_every=3,
        penalty_ratio=0.25,     # Eq. 3 target: 20-25% is the paper's sweet spot
        reconfig_interval=3,    # prune + reconfigure every 3 epochs
        lambda_scale=60.0,      # horizon compression for this short schedule
        threshold=6e-3, zero_sparse=True)
    trainer = PruneTrainTrainer(model, train, val, cfg)
    log = trainer.train()

    print("\n== results ==")
    print(f"dense      : acc {dense_log.final_val_acc:.3f}, "
          f"{dense_log.final_inference_flops / 1e6:.1f} MFLOPs/inference")
    print(f"prunetrain : acc {log.final_val_acc:.3f}, "
          f"{log.final_inference_flops / 1e6:.1f} MFLOPs/inference")
    rel = log.relative_to(dense_log)
    print(f"training FLOPs: {100 * rel['train_flops_ratio']:.0f}% of dense")
    print(f"inference FLOPs: {100 * rel['inference_flops_ratio']:.0f}% "
          f"of dense")
    print(f"params: {dense_log.records[-1].params} -> "
          f"{log.records[-1].params}")
    print("reconfigurations:")
    for i, rep in enumerate(trainer.reports):
        print(f"  #{i}: channels {rep.channels_before}->"
              f"{rep.channels_after}, params {rep.params_before}->"
              f"{rep.params_after}, removed layers {rep.removed_layers}")


if __name__ == "__main__":
    main()
