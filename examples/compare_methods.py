#!/usr/bin/env python
"""Compare training protocols: dense, PruneTrain, SSL, one-time reconfig.

Miniature of the paper's Sec. 5.2 comparisons: four ways to obtain a
compressed model, with their *training* cost and the resulting *inference*
cost side by side.

- dense        : no pruning (the baseline).
- PruneTrain   : regularize + reconfigure continuously from scratch.
- SSL          : pretrain dense, then sparsify keeping the architecture;
                 prune once at the very end (Wen et al.).
- one-time     : regularize from scratch, reconfigure exactly once
                 (Alvarez & Salzmann).

Usage:  python examples/compare_methods.py
"""

from repro.data import make_synthetic
from repro.nn import resnet32
from repro.train import (OneTimeConfig, OneTimeTrainer, PruneTrainConfig,
                         PruneTrainTrainer, SSLConfig, SSLTrainer, Trainer,
                         TrainerConfig)

EPOCHS = 10
COMMON = dict(batch_size=48, augment=False, log_every=0)
PRUNE = dict(penalty_ratio=0.25, lambda_scale=70.0, threshold=7e-3,
             zero_sparse=True)


def fresh_model():
    return resnet32(10, width_mult=0.5, input_hw=12, seed=0)


def main() -> None:
    train = make_synthetic(10, 768, hw=12, noise=1.0, seed=0,
                           name="cifar10s")
    val = make_synthetic(10, 256, hw=12, noise=1.0, seed=1,
                         name="cifar10s-val")

    results = {}
    print("training dense ...")
    dense = Trainer(fresh_model(), train, val,
                    TrainerConfig(epochs=EPOCHS, **COMMON)).train()
    results["dense"] = dense

    print("training PruneTrain ...")
    results["prunetrain"] = PruneTrainTrainer(
        fresh_model(), train, val,
        PruneTrainConfig(epochs=EPOCHS, reconfig_interval=2, **COMMON,
                         **PRUNE)).train()

    print("training SSL (pretrain + sparsify) ...")
    results["ssl"] = SSLTrainer(
        fresh_model(), train, val,
        SSLConfig(epochs=EPOCHS, pretrain_epochs=EPOCHS, **COMMON,
                  **PRUNE)).train()

    print("training one-time reconfiguration ...")
    results["one-time"] = OneTimeTrainer(
        fresh_model(), train, val,
        OneTimeConfig(epochs=EPOCHS, reconfig_epoch=EPOCHS // 2, **COMMON,
                      **PRUNE)).train()

    print(f"\n{'method':12s} | {'val acc':7s} | {'train FLOPs':11s} | "
          f"{'inference FLOPs':15s}")
    base_train = dense.total_train_flops
    base_inf = dense.final_inference_flops
    for name, log in results.items():
        print(f"{name:12s} | {log.final_val_acc:7.3f} | "
              f"{100 * log.total_train_flops / base_train:10.0f}% | "
              f"{100 * log.final_inference_flops / base_inf:14.0f}%")


if __name__ == "__main__":
    main()
