"""Fig. 10 — the accuracy/compression tradeoff is insensitive to the
reconfiguration interval."""

import numpy as np

from repro.experiments import fig10

from conftest import emit, run_once


def test_fig10_reconfig_interval(benchmark, scale):
    result = run_once(benchmark, lambda: fig10.run(scale))
    emit("fig10", fig10.report(result))

    # group points by ratio; across intervals the achieved accuracy and
    # compression must stay in a narrow band (paper: curves overlap)
    by_ratio = {}
    for p in result["points"]:
        by_ratio.setdefault(p["ratio"], []).append(p)
    for ratio, pts in by_ratio.items():
        accs = [p["acc"] for p in pts]
        infs = [p["inference_flops"] for p in pts]
        assert max(accs) - min(accs) < 0.15, \
            f"ratio {ratio}: interval changes accuracy too much {accs}"
        assert max(infs) / max(min(infs), 1) < 3.0, \
            f"ratio {ratio}: interval changes compression too much"
    # shorter intervals prune earlier -> no more total training FLOPs
    # than the longest interval at the same ratio
    for ratio, pts in by_ratio.items():
        pts = sorted(pts, key=lambda p: p["interval"])
        assert pts[0]["train_flops"] <= pts[-1]["train_flops"] * 1.1
