"""Fig. 6 — union's redundant FLOPs are a small premium over gating."""

from repro.experiments import fig6_fig7

from conftest import emit, run_once


def test_fig6_union_vs_gating_flops(benchmark, scale):
    result = run_once(benchmark, lambda: fig6_fig7.run_fig6(scale))
    emit("fig6", fig6_fig7.report_fig6(result))

    for model, rows in result["models"].items():
        for r in rows:
            # both schemes prune; gating <= union <= dense
            assert r["gating"] <= r["union"] + 1e-9
            assert r["union"] <= 1.0 + 1e-9
            # the union premium is small (paper: 1-6%; allow <15% at this
            # scale where channel counts are tiny)
            assert r["gap"] < 0.15, \
                f"{model}@{r['intensity']}: union premium {r['gap']:.2f}"
    # paper: the premium does not grow with depth (ResNet50 vs ResNet32)
    gap32 = max(r["gap"] for r in result["models"]["resnet32"])
    gap50 = max(r["gap"] for r in result["models"]["resnet50"])
    assert gap50 <= gap32 + 0.08
