"""Tab. 1 — the headline grid: training FLOPs/time and inference FLOPs
reduction with small accuracy impact, across models and datasets."""

import numpy as np

from repro.experiments import tab1

from conftest import emit, run_once


def test_tab1_training_acceleration(benchmark, scale):
    result = run_once(benchmark, lambda: tab1.run(scale))
    emit("tab1", tab1.report(result))

    rows = result["rows"]
    assert len(rows) >= 8
    for r in rows:
        label = f"{r['model']}/{r['dataset']}@{r['ratio']}"
        # training and inference must both get cheaper
        assert r["train_flops"] < 1.0, f"{label}: no training FLOPs saved"
        assert r["inference_flops"] < 1.0, f"{label}: no inference saving"
        # inference saving >= training saving (pruning compounds over time)
        assert r["inference_flops"] <= r["train_flops"] + 0.05, label
        # modeled time savings exist but lag FLOPs savings (paper Sec. 5.1)
        assert r["time_1080ti"] < 1.0, f"{label}: no time saved"
        assert r["time_1080ti"] >= r["train_flops"] - 0.1, label

    # substantial average savings (paper: ~50% training FLOPs on CIFAR)
    cifar = [r for r in rows if r["dataset"].startswith("cifar")]
    assert np.mean([r["train_flops"] for r in cifar]) < 0.85

    # accuracy: average within a few points of dense (paper: <2%)
    deltas = [r["acc_delta"] for r in rows]
    assert np.mean(deltas) > -0.10, f"mean acc delta {np.mean(deltas):.3f}"

    # ImageNet-class rows: weaker regularization saves less
    img = [r for r in rows if r["dataset"] == "imagenet-s"]
    if len(img) >= 2:
        img_sorted = sorted(img, key=lambda r: r["ratio"])
        assert img_sorted[0]["train_flops"] >= \
            img_sorted[-1]["train_flops"] - 0.1
