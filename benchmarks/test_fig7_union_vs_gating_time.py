"""Fig. 7 — measured per-block execution time: union (index-free) beats
gating (select/scatter reshaping) despite running more FLOPs."""

from repro.experiments import fig6_fig7

from conftest import emit, run_once


def test_fig7_union_vs_gating_time(benchmark, scale):
    result = run_once(benchmark, lambda: fig6_fig7.run_fig7(scale))
    emit("fig7", fig6_fig7.report_fig7(result))

    assert result["blocks"], "no residual blocks measured"
    # Paper: union is faster on average (1.9x on their V100) because gating
    # pays for tensor reshaping and narrow-dim utilization.  The GPU-modeled
    # times must reproduce that ranking; the CPU measurement is reported for
    # transparency (it inverts: BLAS GEMM dominates, copies are cheap).
    assert result["mean_speedup"] > 1.0, \
        f"union slower than gating on average: {result['mean_speedup']:.2f}x"
    faster = sum(1 for r in result["blocks"] if r["model_speedup"] > 1.0)
    assert faster >= len(result["blocks"]) // 2
    # both execution paths actually ran on the engine
    assert all(r["union_ms"] > 0 and r["gating_ms"] > 0
               for r in result["blocks"])
