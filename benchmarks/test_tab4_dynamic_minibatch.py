"""Tab. 4 — naive vs batch-adjusted PruneTrain."""

from repro.experiments import fig9_tab4

from conftest import emit, run_once


def test_tab4_dynamic_minibatch(benchmark, scale):
    result = run_once(benchmark, lambda: fig9_tab4.run(scale))
    emit("tab4", fig9_tab4.report(result))

    for case, data in result["cases"].items():
        naive = next(r for r in data["tab4"] if r["method"] == "naive")
        adj = next(r for r in data["tab4"] if r["method"] == "adjusted")

        # both reduce modeled training time vs dense
        assert naive["time_red_1080ti"] > 0
        assert adj["time_red_1080ti"] > 0
        # paper: dynamic adjustment reduces time further (fewer iterations,
        # fewer model updates) without hurting pruning quality much
        assert adj["time_red_v100"] >= naive["time_red_v100"] - 0.02, case
        assert adj["comm_ratio"] <= naive["comm_ratio"] + 0.02, case
        # accuracy stays in the same regime
        assert abs(adj["acc_delta"] - naive["acc_delta"]) < 0.12, case
        # compression quality barely affected
        assert abs(adj["inference_flops"] - naive["inference_flops"]) < 0.2
