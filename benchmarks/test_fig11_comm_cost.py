"""Fig. 11 — projected per-epoch communication cost of model updates."""

import numpy as np

from repro.experiments import fig11

from conftest import emit, run_once


def test_fig11_comm_cost(benchmark, scale):
    result = run_once(benchmark, lambda: fig11.run(scale))
    emit("fig11", fig11.report(result))

    for strength, ser in result["series"].items():
        # normalized comm cost starts near dense and declines
        assert ser[0] <= 1.05
        assert ser[-1] < ser[0], f"strength {strength}: no comm saving"
        # the series never rises materially (reconfigs only shrink payloads;
        # batch growth only cuts rounds)
        assert (np.diff(ser) <= 0.05).all()

    # stronger regularization saves at least as much on average
    savings = [result["mean_saving"][s] for s in result["strengths"]]
    assert savings[-1] >= savings[0] - 0.05
    # meaningful aggregate saving at the strongest setting (paper: ~55%)
    assert max(savings) > 0.15
