"""Fig. 4 — sparsified channels (almost) never revive."""

from repro.experiments import fig4

from conftest import emit, run_once


def test_fig4_weight_revival(benchmark, scale):
    result = run_once(benchmark, lambda: fig4.run(scale))
    emit("fig4", fig4.report(result))

    total_sparse = sum(r["ever_sparse"] for r in result["revivals"].values())
    total_revived = sum(r["revived"] for r in result["revivals"].values())
    assert total_sparse > 0, "regularization sparsified no channels at all"
    # Paper: revivals are rare and tiny; allow a small tail at quick scale.
    assert total_revived <= max(1, int(0.15 * total_sparse)), \
        f"{total_revived}/{total_sparse} channels revived"
