"""Fig. 12 — channel and weight density of the final trained model."""

import numpy as np

from repro.experiments import fig12

from conftest import emit, run_once


def test_fig12_density(benchmark, scale):
    result = run_once(benchmark, lambda: fig12.run(scale))
    emit("fig12", fig12.report(result))

    cd = np.array(result["channel_density"])
    wd = np.array(result["weight_density"])
    # pruning happened: average channel density below 1
    assert result["mean_channel_density"] < 0.999
    # paper: substantial unstructured sparsity remains inside kept channels
    assert result["mean_weight_density"] < 0.95
    # weight density can never exceed channel structure by construction of
    # the threshold test on whole groups: spot-check ranges
    assert ((cd >= 0) & (cd <= 1)).all()
    assert ((wd >= 0) & (wd <= 1)).all()
