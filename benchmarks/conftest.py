"""Benchmark-suite plumbing.

Every benchmark regenerates one of the paper's tables/figures at the QUICK
scale, prints the same rows/series the paper reports, and writes them to
``results/<name>.txt``.  Training runs are shared through the process-wide
``Runs`` cache (plus a JSON disk cache under ``.cache/runs``), so the suite
does not retrain shared baselines.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "results")


def emit(name: str, text: str) -> None:
    """Print a report and persist it under results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


@pytest.fixture(scope="session")
def scale():
    from repro.experiments import QUICK
    return QUICK


@pytest.fixture(scope="session")
def runs(scale):
    from repro.experiments import get_runs
    return get_runs(scale)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
