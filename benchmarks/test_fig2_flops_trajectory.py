"""Fig. 2 — FLOPs/iteration trajectories, pruning-phase breakdown, and the
one-time-reconfiguration overhead."""

import numpy as np

from repro.experiments import fig2

from conftest import emit, run_once


def test_fig2_flops_trajectory(benchmark, scale):
    result = run_once(benchmark, lambda: fig2.run(scale))
    emit("fig2", fig2.report(result))

    for ratio, traj in result["trajectories"].items():
        # (a) FLOPs per iteration must fall over training and end well below
        # dense (the paper: most FLOPs pruned, saturating decline).
        assert traj[0] <= 1.0 + 1e-6
        assert traj[-1] < 0.85, f"ratio {ratio}: no meaningful pruning"
        # trajectory is non-increasing up to float noise
        assert (np.diff(traj) <= 1e-6).all()

    # (a) stronger regularization prunes at least as much
    finals = [result["trajectories"][r][-1] for r in result["ratios"]]
    assert finals[-1] <= finals[0] + 0.05

    # (b) the late phase contributes the least pruned FLOPs
    for ratio in result["ratios"]:
        p1, p2, p3 = result["phase_breakdown"][ratio]
        assert p3 <= max(p1, p2) + 1e-6

    # (c) one-time reconfiguration costs more than PruneTrain for EVERY
    # choice of reconfiguration epoch (paper: >25% extra at the optimum)
    for ratio, ov in result["onetime_overhead"].items():
        assert (ov >= 1.0 - 1e-6).all()
        assert ov.min() > 1.02, \
            f"ratio {ratio}: one-time matched PruneTrain ({ov.min():.3f})"
