"""Fig. 9 — training-memory decline and dynamic mini-batch growth."""

import numpy as np

from repro.experiments import fig9_tab4

from conftest import emit, run_once


def test_fig9_memory_and_batch(benchmark, scale):
    result = run_once(benchmark, lambda: fig9_tab4.run(scale))
    emit("fig9_tab4", fig9_tab4.report(result))

    for case, data in result["cases"].items():
        mem_naive = data["memory_naive"]
        # pruning shrinks the training context monotonically (up to noise)
        assert mem_naive[-1] < mem_naive[0], f"{case}: memory did not drop"

        batches = data["batch_adjusted"]
        # the adjuster grows the batch at least once as memory frees up
        assert batches[-1] > batches[0], f"{case}: batch never grew"
        # batch growth is monotone non-decreasing
        assert (np.diff(batches) >= 0).all()

        # adjusted runs refill capacity: memory stays within it but above
        # the naive run's shrunken footprint at the end
        cap = data["capacity"]
        assert (data["memory_adjusted"] <= cap * 1.001).all(), \
            f"{case}: capacity exceeded"
        assert data["memory_adjusted"][-1] >= mem_naive[-1]
