"""Fig. 8 — accuracy vs cost tradeoff curves, PruneTrain vs SSL."""

import numpy as np

from repro.experiments import fig8

from conftest import emit, run_once


def test_fig8_tradeoff_curves(benchmark, scale):
    result = run_once(benchmark, lambda: fig8.run(scale))
    emit("fig8", fig8.report(result))

    for model, curve in result["curves"].items():
        pts = curve["points"]
        d_inf = curve["dense_inference"]
        d_tr = curve["dense_train"]

        # (a/c) stronger regularization -> smaller inference models
        infs = [p["pt_inference"] / d_inf for p in pts]
        assert infs == sorted(infs, reverse=True) or \
            max(np.diff(infs)) < 0.1, f"{model}: non-monotone-ish {infs}"
        assert infs[-1] < 0.9

        # (b/d) PruneTrain trains for LESS than dense; SSL for MORE
        for p in pts:
            assert p["pt_train"] < d_tr, \
                f"{model}@{p['ratio']}: PT did not cut training cost"
            if "ssl_train" in p:
                assert p["ssl_train"] > 1.8 * p["pt_train"], \
                    f"{model}@{p['ratio']}: SSL protocol cost not ~2x+ PT"

        # BN traffic also drops with strength
        bns = [p["pt_bn"] / curve["dense_bn"] for p in pts]
        assert bns[-1] < 1.0

        # comparable inference tradeoff: at matched strength SSL and PT
        # accuracies are in the same regime (within 15 points at this scale)
        for p in pts:
            if "ssl_acc" in p:
                assert abs(p["pt_acc"] - p["ssl_acc"]) < 0.15, \
                    f"{model}@{p['ratio']}: PT {p['pt_acc']:.3f} vs " \
                    f"SSL {p['ssl_acc']:.3f}"

    # the SSL head-to-head ran on at least one model
    assert any("ssl_train" in p
               for curve in result["curves"].values()
               for p in curve["points"])
