"""Tab. 3 — PruneTrain vs trial-and-error pruning from a pretrained model."""

from repro.experiments import tab3

from conftest import emit, run_once


def test_tab3_amc_comparison(benchmark, scale):
    result = run_once(benchmark, lambda: tab3.run(scale))
    emit("tab3", tab3.report(result))

    pt = next(r for r in result["rows"] if r["method"] == "PruneTrain")
    amc = next(r for r in result["rows"] if r["method"] == "AMC-like")

    # Both compress
    assert pt["inference_flops"] < 1.0
    assert amc["inference_flops"] < 0.8

    # PruneTrain trains in less than dense cost; the trial-and-error
    # protocol costs MORE than dense (pretrain + fine-tune rounds).
    assert pt["train_flops"] < 1.0
    assert amc["train_flops"] > 1.0

    # Paper: PruneTrain compresses more at better accuracy; at quick scale
    # require it to win on at least one axis without losing badly on the
    # other.
    wins_flops = pt["inference_flops"] <= amc["inference_flops"] + 0.05
    wins_acc = pt["acc_delta"] >= amc["acc_delta"] - 0.02
    assert wins_flops or wins_acc

    # PruneTrain learns depth: layer removal is reported (may be zero at
    # tiny scale, but the machinery must produce the count)
    assert pt["removed_layers"] >= 0
