"""Serving benchmark: p50/p99 latency + QPS, dense vs pruned checkpoints.

Builds a dense and a surgically pruned ResNet-32 at the QUICK scale,
round-trips both through the ``repro.io`` checkpoint format into a
:class:`repro.serve.ModelRegistry`, and drives the
:class:`repro.serve.InferenceServer` with deterministic synthetic
open-loop traffic (seeded Poisson arrivals) at several offered loads
expressed as fractions of each model's measured batched capacity.

Before any load runs, a **parity gate** checks the serving contract on
every dispatch path (exact batch, zero-padded group, on-demand tail
shape, end-to-end through the threaded server): served logits must be
bit-identical to a batch-1 eager forward of each request alone.  The
result lands in ``results/BENCH_serve.json`` under ``parity`` and CI
fails the perf-smoke leg if it is not clean.

Offered loads are open loop: arrival times are fixed ahead of time and
latency is charged from the *scheduled* arrival, so a lagging server
accumulates queueing delay in p99 instead of silently back-pressuring
the generator.

Run directly::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py

writes ``results/BENCH_serve.json``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import numpy as np

from repro.experiments.configs import QUICK, make_model
from repro.io import save_checkpoint
from repro.prune import prune_and_reconfigure
from repro.serve import (InferenceServer, ModelRegistry,
                         exponential_arrivals, run_open_loop)
from repro.tensor import Tensor, no_grad

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "results")
OUT_PATH = os.path.join(RESULTS_DIR, "BENCH_serve.json")

MODEL = "resnet32"
DATASET = "cifar10s"
HW = QUICK.hw
SEED = 3
PRUNE_FRAC = 0.5


def _sparsify(model, frac: float = PRUNE_FRAC, seed: int = 0) -> None:
    """Push a random channel subset below the prune threshold (the test
    suite's surgery idiom — produces a genuinely compact model without
    training)."""
    rng = np.random.default_rng(seed)
    g = model.graph
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < frac
        kill[0] = False
        for node in g.writers(sid):
            node.conv.weight.data[kill] *= 1e-9
        for node in g.readers(sid):
            node.conv.weight.data[:, kill] *= 1e-9


def build_checkpoints(out_dir: str) -> Dict[str, str]:
    """Write dense + pruned QUICK checkpoints; returns variant -> path."""
    os.makedirs(out_dir, exist_ok=True)
    paths = {}
    dense = make_model(MODEL, DATASET, QUICK, seed=SEED)
    paths["dense"] = os.path.join(out_dir, "serve_dense.npz")
    save_checkpoint(paths["dense"], dense)
    pruned = make_model(MODEL, DATASET, QUICK, seed=SEED)
    _sparsify(pruned)
    prune_and_reconfigure(pruned)
    paths["pruned"] = os.path.join(out_dir, "serve_pruned.npz")
    save_checkpoint(paths["pruned"], pruned)
    return paths


def _factory():
    return make_model(MODEL, DATASET, QUICK, seed=SEED)


def _eager_rows(model, x: np.ndarray) -> np.ndarray:
    rows = []
    with no_grad():
        for i in range(x.shape[0]):
            rows.append(np.array(model(Tensor(x[i:i + 1])).data[0],
                                 copy=True))
    return np.stack(rows)


def parity_check(registry: ModelRegistry, name: str, max_batch: int,
                 rng: np.random.Generator) -> Dict[str, object]:
    """Gate: batched served outputs bit-identical to unbatched eager
    forward, on every dispatch path."""
    served = registry.served(name)
    model = served.model
    x = rng.normal(size=(max_batch + 3, 3, HW, HW)).astype(np.float32)
    checks = {}
    # exact cached batch
    out = registry.run(name, x[:max_batch])
    checks["exact_batch"] = bool(
        np.array_equal(out, _eager_rows(model, x[:max_batch])))
    # zero-padded partial group
    k = max(1, max_batch // 2 - 1)
    out = registry.run(name, x[:k])
    checks["padded_group"] = bool(
        np.array_equal(out, _eager_rows(model, x[:k])))
    # on-demand tail shape (> any cached batch)
    out = registry.run(name, x)
    checks["tail_shape"] = bool(np.array_equal(out, _eager_rows(model, x)))
    # end-to-end through the threaded server + dynamic batcher
    with InferenceServer(registry, max_batch=max_batch,
                         latency_budget=0.002) as server:
        futures = [server.submit(name, x[i]) for i in range(max_batch + 3)]
        rows = [f.result(timeout=60) for f in futures]
    ref = _eager_rows(model, x)
    checks["through_server"] = bool(
        all(np.array_equal(rows[i], ref[i]) for i in range(len(rows))))
    checks["bit_identical"] = bool(all(checks.values()))
    checks["rows_checked"] = int(2 * (max_batch + 3) + max_batch + k)
    return checks


def _measure_capacity(registry: ModelRegistry, name: str, max_batch: int,
                      rng: np.random.Generator, repeats: int = 7) -> float:
    """Best-of-N batched replay throughput (img/s) — the offered-load
    yardstick."""
    x = rng.normal(size=(max_batch, 3, HW, HW)).astype(np.float32)
    registry.run(name, x)  # warm: capture + first replay
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        registry.run(name, x)
        best = min(best, time.perf_counter() - t0)
    return max_batch / best


def run_serve_bench(n_requests: int = 240,
                    load_fracs: tuple = (0.25, 0.5, 0.8),
                    max_batch: int = 16,
                    latency_budget_ms: float = 5.0,
                    seed: int = 0,
                    ckpt_dir: str = None) -> Dict:
    """Full benchmark; returns the BENCH_serve.json payload."""
    import tempfile
    own_dir = None
    if ckpt_dir is None:
        own_dir = tempfile.TemporaryDirectory(prefix="repro-serve-")
        ckpt_dir = own_dir.name
    try:
        paths = build_checkpoints(ckpt_dir)
        results: Dict[str, object] = {
            "model": MODEL, "dataset": DATASET, "scale": "quick", "hw": HW,
            "max_batch": max_batch, "latency_budget_ms": latency_budget_ms,
            "n_requests": n_requests, "seed": seed, "prune_frac": PRUNE_FRAC}
        per_variant: Dict[str, Dict] = {}
        for variant in ("dense", "pruned"):
            rng = np.random.default_rng(seed + 11)
            registry = ModelRegistry(max_models=1)
            served = registry.register(variant, paths[variant], _factory)
            served.warm(1, (3, HW, HW))
            served.warm(max_batch, (3, HW, HW))
            parity = parity_check(registry, variant, max_batch, rng)
            capacity = _measure_capacity(registry, variant, max_batch, rng)
            samples = rng.normal(
                size=(32, 3, HW, HW)).astype(np.float32)
            loads: List[Dict] = []
            with InferenceServer(
                    registry, max_batch=max_batch,
                    latency_budget=latency_budget_ms / 1e3) as server:
                for frac in load_fracs:
                    offered = max(capacity * frac, 1.0)
                    arrivals = exponential_arrivals(
                        n_requests, qps=offered, seed=seed)
                    tr = run_open_loop(server, variant, samples, arrivals,
                                       offered_qps=offered)
                    row = tr.to_dict()
                    row["load_frac"] = frac
                    loads.append(row)
            per_variant[variant] = {
                "checkpoint": os.path.basename(paths[variant]),
                "capacity_qps": capacity,
                "parity": parity,
                "loads": loads,
                "serve_stats": served.stats()}
            registry.clear()
        results["dense"] = per_variant["dense"]
        results["pruned"] = per_variant["pruned"]
        mid = len(load_fracs) // 2
        results["speedup"] = {
            "capacity": (per_variant["pruned"]["capacity_qps"]
                         / per_variant["dense"]["capacity_qps"]),
            "p50_latency_at_mid_load": (
                per_variant["dense"]["loads"][mid]["p50_ms"]
                / max(per_variant["pruned"]["loads"][mid]["p50_ms"], 1e-9)),
            "bit_identical": bool(
                per_variant["dense"]["parity"]["bit_identical"]
                and per_variant["pruned"]["parity"]["bit_identical"])}
        return results
    finally:
        if own_dir is not None:
            own_dir.cleanup()


def write_results(results: Dict, path: str = OUT_PATH) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def main() -> None:
    results = run_serve_bench()
    path = write_results(results)
    sp = results["speedup"]
    print(f"wrote {path}")
    for variant in ("dense", "pruned"):
        row = results[variant]
        print(f"{variant}: capacity {row['capacity_qps']:.0f} img/s, "
              f"parity={'OK' if row['parity']['bit_identical'] else 'FAIL'}")
        for load in row["loads"]:
            print(f"  load {load['load_frac']:.2f}: offered "
                  f"{load['offered_qps']:.0f} qps, achieved "
                  f"{load['achieved_qps']:.0f}, p50 {load['p50_ms']:.2f}ms, "
                  f"p99 {load['p99_ms']:.2f}ms")
    print(f"pruned/dense capacity speedup: {sp['capacity']:.2f}x, "
          f"p50 speedup at mid load: {sp['p50_latency_at_mid_load']:.2f}x, "
          f"bit-identical: {sp['bit_identical']}")


if __name__ == "__main__":
    main()
