"""Engine benchmark: seed kernels ("before") vs optimized engine ("after").

Measures, in one process, the same workloads under both engine
configurations — the seed path is kept alive behind
:data:`repro.tensor.workspace.config` exactly so this comparison stays
honest (same NumPy, same process, same arrays):

* conv2d forward+backward micro-benchmarks at ResNet-32 QUICK shapes,
* fused vs unfused BatchNorm→ReLU forward+backward,
* one full ResNet-32 training step (forward, loss, backward, SGD) at the
  QUICK benchmark scale, steady-state (post-warmup).

Measurement methodology: the two engines are timed in *interleaved* rounds
(baseline round, optimized round, repeat) and each engine's best round is
reported.  On a shared host, absolute wall times for identical code can
drift by tens of percent between measurement windows; interleaving puts
both engines in the same windows so the *ratio* stays meaningful, and
best-of-N discards the rounds that caught external noise.

Run directly::

    PYTHONPATH=src python benchmarks/perf/bench_engine.py

writes ``results/BENCH_engine.json`` with before/after milliseconds and
speedups, plus ``results/BENCH_compile.json`` comparing the eager
define-by-run step against the compiled StepPlan replay
(:mod:`repro.tensor.compile`) with *both* sides on the optimized engine.
The perf smoke test (``test_perf_smoke.py``) runs a shortened version of
the same harness.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict

import numpy as np

from repro.nn import resnet32
from repro.optim import SGD
from repro.tensor import Tensor, workspace
from repro.tensor import functional as F
from repro.tensor.ops import conv as conv_ops
from repro.tensor.workspace import baseline_engine

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "results")
OUT_PATH = os.path.join(RESULTS_DIR, "BENCH_engine.json")
OUT_PATH_COMPILE = os.path.join(RESULTS_DIR, "BENCH_compile.json")
OUT_PATH_MEMPLAN = os.path.join(RESULTS_DIR, "BENCH_memplan.json")
OUT_PATH_PARALLEL = os.path.join(RESULTS_DIR, "BENCH_parallel.json")
OUT_PATH_SPARSE = os.path.join(RESULTS_DIR, "BENCH_sparse.json")
OUT_PATH_INDEX = os.path.join(RESULTS_DIR, "BENCH_index.json")

#: (name, n, c_in, hw, c_out, k, stride, pad) — the conv population of
#: ResNet-32 at the QUICK scale (hw=12, width_mult=0.375) plus the 1x1
#: projection convs.
CONV_SHAPES = [
    ("conv3x3_s1_c6", 32, 6, 12, 6, 3, 1, 1),
    ("conv3x3_s2_c12", 32, 6, 12, 12, 3, 2, 1),
    ("conv3x3_s1_c12", 32, 12, 6, 12, 3, 1, 1),
    ("conv3x3_s1_c24", 32, 24, 3, 24, 3, 1, 1),
    ("conv1x1_s2_proj", 32, 6, 12, 12, 1, 2, 0),
    ("conv1x1_s1_pw", 32, 24, 6, 24, 1, 1, 0),
]

BN_SHAPE = (32, 24, 6, 6)


def _conv_workload(n, ci, hw, co, k, stride, pad, rng) -> Callable[[], None]:
    x = rng.standard_normal((n, ci, hw, hw), dtype=np.float32)
    w = rng.standard_normal((co, ci, k, k), dtype=np.float32)
    ho, wo = conv_ops.conv_out_size(hw, hw, k, k, stride, pad)
    dy = rng.standard_normal((n, co, ho, wo), dtype=np.float32)

    def run():
        y, ctx = conv_ops.conv2d_forward(x, w, None, stride, pad)
        dx, dw, db = conv_ops.conv2d_backward(dy, ctx, x.shape, w,
                                              stride, pad)
        workspace.release(dx)
        conv_ops.release_ctx(ctx)

    return run


def _bn_relu_workload(rng) -> Callable[[], None]:
    from repro.tensor.ops import norm as norm_ops
    x = rng.standard_normal(BN_SHAPE, dtype=np.float32)
    dy = rng.standard_normal(BN_SHAPE, dtype=np.float32)
    gamma = np.ones(BN_SHAPE[1], dtype=np.float32)
    beta = np.zeros(BN_SHAPE[1], dtype=np.float32)
    rm = np.zeros(BN_SHAPE[1], dtype=np.float32)
    rv = np.ones(BN_SHAPE[1], dtype=np.float32)

    def run():
        # Seed engine has no fused kernel: BN then a separate ReLU pass,
        # which is exactly what the functional layer did before fusion.
        if workspace.config.fused_bnrelu:
            y, cache = norm_ops.batchnorm_forward(
                x, gamma, beta, rm, rv, 0.1, 1e-5, True, relu=True)
            norm_ops.batchnorm_backward(dy, cache)
        else:
            y, cache = norm_ops.batchnorm_forward(
                x, gamma, beta, rm, rv, 0.1, 1e-5, True)
            r = np.maximum(y, 0)
            g = dy * (r > 0)
            norm_ops.batchnorm_backward(g, cache)

    return run


def _train_step_workload(rng) -> Callable[[], None]:
    """One QUICK-scale ResNet-32 training step (the acceptance workload)."""
    model = resnet32(num_classes=10, width_mult=0.375, input_hw=12, seed=0)
    opt = SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)
    xb = rng.standard_normal((32, 3, 12, 12), dtype=np.float32)
    yb = rng.integers(0, 10, size=32)

    def run():
        logits = model(Tensor(xb))
        loss = F.cross_entropy(logits, yb)
        opt.zero_grad()
        loss.backward()
        opt.step()

    return run


def _measure_interleaved(run_before: Callable[[], None],
                         run_after: Callable[[], None],
                         rounds: int, number: int, warmup: int = 1
                         ) -> Dict[str, float]:
    """Time both engines in alternating rounds; report per-engine best.

    ``run_before`` is executed inside :func:`baseline_engine`; each round
    times ``number`` calls and the minimum per-call round mean survives.
    """
    with baseline_engine():
        for _ in range(warmup):
            run_before()
    for _ in range(warmup):
        run_after()
    before = after = float("inf")
    for _ in range(rounds):
        with baseline_engine():
            t0 = time.perf_counter()
            for _ in range(number):
                run_before()
            before = min(before, (time.perf_counter() - t0) / number)
        t0 = time.perf_counter()
        for _ in range(number):
            run_after()
        after = min(after, (time.perf_counter() - t0) / number)
    before *= 1e3
    after *= 1e3
    return {"before_ms": round(before, 4), "after_ms": round(after, 4),
            "speedup": round(before / after, 3)}


def _measure_interleaved_same_engine(run_before: Callable[[], None],
                                     run_after: Callable[[], None],
                                     rounds: int, number: int, warmup: int = 1
                                     ) -> Dict[str, float]:
    """Interleaved A/B where both sides run the *current* engine config.

    Used for the compiled-vs-eager comparison: wrapping the "before" side
    in :func:`baseline_engine` (as :func:`_measure_interleaved` does) would
    conflate the step-plan win with the kernel-level optimizations.
    """
    for _ in range(warmup):
        run_before()
    for _ in range(warmup):
        run_after()
    before = after = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(number):
            run_before()
        before = min(before, (time.perf_counter() - t0) / number)
        t0 = time.perf_counter()
        for _ in range(number):
            run_after()
        after = min(after, (time.perf_counter() - t0) / number)
    before *= 1e3
    after *= 1e3
    return {"before_ms": round(before, 4), "after_ms": round(after, 4),
            "speedup": round(before / after, 3)}


def _compiled_step_pair(rng) -> tuple:
    """Eager vs compiled stepping of the acceptance workload.

    Both sides run the optimized engine on their own model/optimizer twin
    (identical seed), so the measured delta isolates capture/replay: no
    graph construction, no closure allocation, preplanned buffers.
    """
    from repro.tensor.compile import capture_training_step

    xb = rng.standard_normal((32, 3, 12, 12), dtype=np.float32)
    yb = rng.integers(0, 10, size=32)

    m_e = resnet32(num_classes=10, width_mult=0.375, input_hw=12, seed=0)
    o_e = SGD(m_e.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)

    def run_eager():
        logits = m_e(Tensor(xb))
        loss = F.cross_entropy(logits, yb)
        o_e.zero_grad()
        loss.backward()
        o_e.step()

    m_c = resnet32(num_classes=10, width_mult=0.375, input_hw=12, seed=0)
    o_c = SGD(m_c.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)
    o_c.zero_grad()
    plan, loss_t, _, reason = capture_training_step(m_c, xb, yb)
    if plan is None:
        raise RuntimeError(f"step capture failed: {reason}")
    loss_t.backward()
    o_c.step()

    def run_compiled():
        o_c.zero_grad()
        plan.run(xb, yb)
        o_c.step()

    return run_eager, run_compiled


def run_compile_bench(step_warmup: int = 3, step_iters: int = 5,
                      step_rounds: int = 8) -> dict:
    """Compiled-vs-eager step A/B; returns the BENCH_compile.json payload."""
    run_eager, run_compiled = _compiled_step_pair(np.random.default_rng(1))
    step = _measure_interleaved_same_engine(
        run_eager, run_compiled, step_rounds, step_iters, warmup=step_warmup)
    workspace.invalidate()
    return {
        "meta": {
            "workload": "resnet32 @ QUICK scale (hw=12, width_mult=0.375, "
                        "batch=32)",
            "before": "optimized engine, eager define-by-run step (graph "
                      "built and torn down every batch)",
            "after": "optimized engine, compiled StepPlan replay (flat "
                     "kernel list, preplanned buffers, zero graph "
                     "construction)",
            "methodology": "interleaved A/B rounds, best-of-N per side "
                           "(robust to shared-host noise); replay is "
                           "bit-exact vs eager",
        },
        "micro": {},
        "train_step": {
            "warmup_steps": step_warmup, "steps_per_round": step_iters,
            "rounds": step_rounds, **step,
        },
    }


def _memplan_plan_pair(rng) -> tuple:
    """Build twin compiled steps, one with the memory planner off/on each.

    Returns ``(plan_on, run_on, peak_on, plan_off, run_off, peak_off)``
    where the ``peak_*`` entries are tracemalloc peaks (bytes) covering
    capture + two replays — the allocation cost of building and running
    each plan layout.
    """
    import tracemalloc

    from repro.tensor.compile import capture_training_step

    xb = rng.standard_normal((32, 3, 12, 12), dtype=np.float32)
    yb = rng.integers(0, 10, size=32)

    def build(mem_plan: bool) -> tuple:
        saved = workspace.config.mem_plan
        workspace.config.mem_plan = mem_plan
        tracemalloc.start()
        try:
            m = resnet32(num_classes=10, width_mult=0.375, input_hw=12,
                         seed=0)
            o = SGD(m.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)
            o.zero_grad()
            plan, loss_t, _, reason = capture_training_step(m, xb, yb)
            if plan is None:
                raise RuntimeError(f"step capture failed: {reason}")
            loss_t.backward()
            o.step()

            def run():
                o.zero_grad()
                plan.run(xb, yb)
                o.step()

            for _ in range(2):
                run()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
            workspace.config.mem_plan = saved
        return plan, run, peak

    plan_off, run_off, peak_off = build(False)
    plan_on, run_on, peak_on = build(True)
    if plan_on.mem_metrics() is None:
        raise RuntimeError("memory planner did not engage")
    return plan_on, run_on, peak_on, plan_off, run_off, peak_off


def _batch_schedule_pair() -> dict:
    """Compact PruneTrain run pair: analytical vs measured batch sizing.

    Same model, data, capacity, and schedule; the only difference is the
    adjuster's capacity signal.  The planner's measured bytes/sample is
    below the analytical estimate, so at equal capacity the measured
    schedule must grow the batch at least as fast (paper Sec. 4.3 driven
    by real footprint).
    """
    from repro.costmodel import MemoryModel, iteration_memory_bytes
    from repro.data import make_synthetic
    from repro.distributed import DynamicBatchAdjuster
    from repro.nn import resnet20
    from repro.train import PruneTrainConfig, PruneTrainTrainer

    def schedule(source: str) -> list:
        train = make_synthetic(10, 192, hw=16, noise=0.8, seed=0, name="t")
        val = make_synthetic(10, 64, hw=16, noise=0.8, seed=1, name="v")
        model = resnet20(10, width_mult=0.375, input_hw=16, seed=0)
        cfg = PruneTrainConfig(
            epochs=4, batch_size=32, augment=False, log_every=0,
            penalty_ratio=0.3, reconfig_interval=2, lambda_scale=400.0,
            zero_sparse=True)
        cap = iteration_memory_bytes(model.graph, 32) * 2
        adj = DynamicBatchAdjuster(MemoryModel(cap), granularity=8,
                                   max_batch=256, source=source)
        trainer = PruneTrainTrainer(model, train, val, cfg,
                                    batch_adjuster=adj)
        log = trainer.train()
        return [int(r.batch_size) for r in log.records]

    analytical = schedule("analytical")
    measured = schedule("measured")
    workspace.invalidate()
    return {
        "analytical": analytical,
        "measured": measured,
        "measured_ge_analytical": all(m >= a for m, a
                                      in zip(measured, analytical)),
    }


def run_memplan_bench(step_warmup: int = 3, step_iters: int = 5,
                      step_rounds: int = 8,
                      batch_schedule: bool = True) -> dict:
    """Planner on/off A/B; returns the BENCH_memplan.json payload.

    Compares the PR-3 compiled engine (every plan buffer private) against
    the arena-planned layout on the acceptance workload: replay speed
    (interleaved, best-of-N), resident plan footprint (arena vs
    sum-of-private-buffers), tracemalloc peaks, and — since the layouts
    must never change values — a bit-identity check of the two replays.
    """
    (plan_on, run_on, peak_on,
     plan_off, run_off, peak_off) = _memplan_plan_pair(
        np.random.default_rng(1))
    step = _measure_interleaved_same_engine(
        run_off, run_on, step_rounds, step_iters, warmup=step_warmup)
    # Both twins have now replayed the same number of steps from the same
    # seed, so their next losses must agree to the bit.
    rng = np.random.default_rng(7)
    xb = rng.standard_normal((32, 3, 12, 12), dtype=np.float32)
    yb = rng.integers(0, 10, size=32)
    loss_on, logits_on = plan_on.run(xb, yb)
    loss_off, logits_off = plan_off.run(xb, yb)
    bit_identical = bool(np.array_equal(loss_on, loss_off)
                         and np.array_equal(logits_on, logits_off))
    m = plan_on.mem_metrics()
    pool_cached = workspace.POOL.cached_bytes
    workspace.invalidate()
    payload = {
        "meta": {
            "workload": "resnet32 @ QUICK scale (hw=12, width_mult=0.375, "
                        "batch=32)",
            "before": "compiled StepPlan, private per-buffer layout "
                      "(planner off)",
            "after": "compiled StepPlan, liveness-planned shared arena "
                     "(planner on)",
            "methodology": "interleaved A/B rounds, best-of-N per side; "
                           "layouts verified bit-identical",
        },
        "train_step": {
            "warmup_steps": step_warmup, "steps_per_round": step_iters,
            "rounds": step_rounds, **step,
        },
        "memory": {
            "arena_bytes": int(m["arena_bytes"]),
            "liveness_peak_bytes": int(m["peak_bytes"]),
            "plan_private_bytes": int(m["naive_bytes"]),
            "savings_fraction": round(m["savings"], 4),
            "alias_buffers": int(m["alias_buffers"]),
            "tracemalloc_peak_on_bytes": int(peak_on),
            "tracemalloc_peak_off_bytes": int(peak_off),
            "pool_cached_bytes": int(pool_cached),
        },
        "bit_identical": bit_identical,
    }
    if batch_schedule:
        payload["batch_schedule"] = _batch_schedule_pair()
    return payload


def _parallel_plan_pair(rng, workers: int) -> tuple:
    """Twin compiled steps: serial replay vs level-scheduled replay.

    Returns ``(plan_s, run_s, o_s, m_s, plan_p, run_p, o_p, m_p)``; each
    ``run_*`` closure pins the engine config its plan was captured under
    (the plan signature check demands it) before replaying one optimizer
    step.
    """
    from repro.tensor.compile import capture_training_step

    xb = rng.standard_normal((32, 3, 12, 12), dtype=np.float32)
    yb = rng.integers(0, 10, size=32)

    def build(parallel: bool) -> tuple:
        workspace.config.parallel_replay = parallel
        workspace.config.replay_workers = workers
        m = resnet32(num_classes=10, width_mult=0.375, input_hw=12, seed=0)
        o = SGD(m.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)
        o.zero_grad()
        plan, loss_t, _, reason = capture_training_step(m, xb, yb)
        if plan is None:
            raise RuntimeError(f"step capture failed: {reason}")
        loss_t.backward()
        o.step()

        def run():
            workspace.config.parallel_replay = parallel
            workspace.config.replay_workers = workers
            o.zero_grad()
            plan.run(xb, yb)
            o.step()

        return plan, run, o, m

    plan_s, run_s, o_s, m_s = build(False)
    plan_p, run_p, o_p, m_p = build(True)
    if plan_p._levels is None:
        raise RuntimeError("parallel schedule did not engage")
    return plan_s, run_s, o_s, m_s, plan_p, run_p, o_p, m_p


def _modeled_schedule_speedup(plan, workers: int, xb, yb, o,
                              samples: int = 3) -> Dict[str, object]:
    """Critical-path model of the level schedule from measured thunk times.

    Replays the plan on one thread while timing every thunk (several
    samples, per-thunk minimum), then evaluates the schedule with ``k``
    executors: a level of thunks ``T`` costs ``max(max(T), sum(T) / k)``
    (can't beat its longest thunk, can't beat perfect work sharing).
    This bounds what the pool can achieve on a ``k``-core host net of
    dispatch overhead — the honest number to report from a host with
    fewer cores than ``workers``.
    """
    per_level: list = None
    for _ in range(samples):
        workspace.config.parallel_replay = True
        o.zero_grad()
        _, _, level_seconds = plan.replay_timed(xb, yb)
        if per_level is None:
            per_level = [list(ts) for ts in level_seconds]
        else:
            per_level = [[min(a, b) for a, b in zip(prev, ts)]
                         for prev, ts in zip(per_level, level_seconds)]
    serial = sum(sum(ts) for ts in per_level)
    modeled = sum(max(max(ts), sum(ts) / workers) for ts in per_level)
    widths = [len(ts) for ts in per_level]
    return {
        "serial_thunk_seconds": round(serial, 6),
        "modeled_parallel_seconds": round(modeled, 6),
        "modeled_speedup": round(serial / modeled, 3),
        "levels": len(per_level),
        "max_width": max(widths),
        "parallel_levels": sum(1 for w in widths if w > 1),
    }


def run_parallel_bench(workers: int = 4, bit_steps: int = 4,
                       step_warmup: int = 3, step_iters: int = 5,
                       step_rounds: int = 8) -> dict:
    """Parallel-vs-serial replay A/B; returns the BENCH_parallel.json
    payload.

    Reports both the *measured* interleaved wall times on this host and
    the *modeled* critical-path speedup at ``workers`` executors derived
    from measured per-thunk serial timings.  On hosts with fewer cores
    than ``workers`` the measured number cannot show the schedule's win
    (threads time-slice one core); the modeled number is the
    schedule-exposed parallelism and is what the acceptance gate checks,
    with ``host_cpus`` recorded so readers can judge the measurement.
    """
    saved = (workspace.config.parallel_replay,
             workspace.config.replay_workers)
    try:
        (plan_s, run_s, o_s, m_s,
         plan_p, run_p, o_p, m_p) = _parallel_plan_pair(
            np.random.default_rng(1), workers)

        # Bit-exactness first: twins step in lockstep, every parameter and
        # momentum buffer must agree to the bit after every step.
        bit_identical = True
        for _ in range(bit_steps):
            run_s()
            run_p()
            for (n, a), (_, b) in zip(m_s.named_parameters(),
                                      m_p.named_parameters()):
                if not (np.array_equal(a.data, b.data)
                        and np.array_equal(o_s.state_for(a),
                                           o_p.state_for(b))):
                    bit_identical = False

        step = _measure_interleaved_same_engine(
            run_s, run_p, step_rounds, step_iters, warmup=step_warmup)
        model = _modeled_schedule_speedup(
            plan_p, workers,
            np.random.default_rng(2).standard_normal((32, 3, 12, 12),
                                                     dtype=np.float32),
            np.random.default_rng(2).integers(0, 10, size=32), o_p)

        from repro.tensor import parallel as par
        pool_stats = par.STATS.as_dict()
        pool_stats.pop("last_levels", None)
    finally:
        (workspace.config.parallel_replay,
         workspace.config.replay_workers) = saved
        workspace.invalidate()
    return {
        "meta": {
            "workload": "resnet32 @ QUICK scale (hw=12, width_mult=0.375, "
                        "batch=32)",
            "before": "compiled StepPlan, serial thunk replay",
            "after": f"compiled StepPlan, level-scheduled replay on "
                     f"{workers} threads",
            "methodology": "interleaved A/B rounds, best-of-N per side; "
                           "replays verified bit-identical; modeled "
                           "speedup = critical-path evaluation of the "
                           "level schedule over per-thunk serial timings",
            "speedup_basis": "modeled_critical_path",
        },
        "host_cpus": os.cpu_count(),
        "workers": workers,
        "train_step": {
            "warmup_steps": step_warmup, "steps_per_round": step_iters,
            "rounds": step_rounds, **step,
        },
        "schedule_model": model,
        "pool": pool_stats,
        "bit_identical": bool(bit_identical),
    }


def _sparse_schedule_run(sparse_on: bool, threshold: float, epochs: int,
                         checkpoint_dir: str = None,
                         resume_from: str = None) -> tuple:
    """One QUICK ResNet-32 PruneTrain schedule with ``zero_sparse`` on.

    ``remove_layers`` is off: this is the regime the sparse compute paths
    accelerate — channels hard-zeroed by the reconfiguration but not yet
    surgically removed, exactly what PruneTrain models between (or without)
    surgery.  Returns ``(model, losses, trainer)``.
    """
    from repro.data import make_synthetic
    from repro.train import PruneTrainConfig, PruneTrainTrainer

    train = make_synthetic(10, 192, hw=12, noise=0.8, seed=0, name="t")
    val = make_synthetic(10, 64, hw=12, noise=0.8, seed=1, name="v")
    from repro.nn import resnet32 as _r32
    model = _r32(num_classes=10, width_mult=0.375, input_hw=12, seed=0)
    cfg = PruneTrainConfig(
        epochs=epochs, batch_size=32, augment=False, bn_recal_batches=0,
        penalty_ratio=0.25, lambda_mode="rate", threshold=threshold,
        reconfig_interval=2, zero_sparse=True, remove_layers=False,
        sparse_compute=sparse_on,
        checkpoint_every=1 if checkpoint_dir else 0,
        checkpoint_dir=checkpoint_dir)
    trainer = PruneTrainTrainer(model, train, val, cfg)
    log = trainer.train(resume_from=resume_from)
    return model, [float(r.train_loss) for r in log.records], trainer


def _dead_state_for_ab(model, threshold: float,
                       target_frac: float = 0.68) -> Dict[str, object]:
    """Re-zero sparsified groups on ``model`` — the state immediately after
    a ``zero_sparse`` reconfiguration — escalating the threshold until the
    channel dead fraction reaches ``target_frac``.  Returns the state
    description (the publish itself is the caller's job)."""
    from repro.prune import zero_sparsified_groups
    from repro.prune.sparsity import conv_sparsity

    th = threshold
    for _ in range(8):
        tot = dead = full = 0
        for node in model.graph.active_convs():
            sp = conv_sparsity(node, th)
            k = len(sp.out_sparse)
            d = int(np.sum(sp.out_sparse))
            tot += k
            dead += d
            full += int(d == k)
        if tot and dead / tot >= target_frac:
            break
        th *= 1.5
    zero_sparsified_groups(model.graph, th)
    return {"threshold": th, "channel_dead_fraction": round(dead / tot, 4),
            "fully_dead_convs": full, "total_convs":
            len(list(model.graph.active_convs()))}


def _publish_model(model, threshold: float) -> None:
    from repro.prune.sparsity import conv_sparsity
    from repro.tensor import sparse

    entries = []
    for node in model.graph.active_convs():
        sp = conv_sparsity(node, threshold)
        entries.append((node.conv.weight,
                        np.asarray(sp.in_sparse, dtype=bool),
                        np.asarray(sp.out_sparse, dtype=bool)))
    sparse.publish(entries)


def run_sparse_bench(threshold: float = 0.04, epochs: int = 4,
                     step_warmup: int = 3, step_iters: int = 5,
                     step_rounds: int = 8) -> dict:
    """Sparse-vs-dense compute-path A/B; returns BENCH_sparse.json payload.

    Three legs:

    1. **Schedule bit-identity** — the full QUICK ResNet-32 PruneTrain
       schedule (``zero_sparse``, no surgery) run dense and sparse from
       identical seeds: losses and final parameters must agree to the bit.
    2. **Kill/resume** — the sparse run checkpointed every epoch, killed
       after the first reconfiguration, and resumed: the resumed run must
       land on the same bits (the dead-set exporter history is part of the
       checkpoint).
    3. **Step A/B** — twin compiled plans on the post-schedule model with
       its sparsified groups re-zeroed (the state right after a
       reconfiguration, where PruneTrain spends its training time).  The
       optimizer update is excluded from the timed region so the measured
       state stays stationary across rounds (BN-beta regrowth would
       otherwise revive channels and trip the sticky dense fallback);
       the update is identical work on both sides.

    The gate runs at its real operating point (``sparse_min_gain`` as
    configured, default 1.05); every decision it took is recorded in the
    payload, and ``gate_never_slower_ok`` checks that no accepted sparse
    pipeline measured more than 5% slower than dense.
    """
    import shutil
    import tempfile

    from repro.io import checkpoint_path
    from repro.tensor import sparse
    from repro.tensor.compile import capture_training_step

    saved = (workspace.config.sparse_compute, workspace.config.mem_plan)
    tmpdir = tempfile.mkdtemp(prefix="bench-sparse-")
    try:
        # -- leg 1: full-schedule bit-identity ------------------------------
        sparse.clear()
        sparse.STATS.reset()
        m_d, losses_d, _ = _sparse_schedule_run(False, threshold, epochs)
        m_s, losses_s, _ = _sparse_schedule_run(
            True, threshold, epochs, checkpoint_dir=tmpdir)
        schedule_stats = {k: v for k, v in sparse.STATS.as_dict().items()
                          if k != "decisions"}
        schedule_bit = losses_d == losses_s and all(
            np.array_equal(a.data, b.data)
            for a, b in zip(m_d.parameters(), m_s.parameters()))

        # -- leg 2: kill after the first reconfiguration, resume ------------
        m_r, losses_r, _ = _sparse_schedule_run(
            True, threshold, epochs,
            resume_from=checkpoint_path(tmpdir, 1))
        resume_bit = losses_r == losses_s and all(
            np.array_equal(a.data, b.data)
            for a, b in zip(m_r.parameters(), m_s.parameters()))

        # -- leg 3: step A/B at the post-reconfiguration dead state ---------
        sparse.clear()
        sparse.STATS.reset()
        dead_state = _dead_state_for_ab(m_d, threshold)
        _dead_state_for_ab(m_s, threshold)   # identical re-zero on the twin
        rng = np.random.default_rng(1)
        xb = rng.standard_normal((32, 3, 12, 12), dtype=np.float32)
        yb = rng.integers(0, 10, size=32)

        def build(model, sparse_on):
            workspace.config.sparse_compute = sparse_on
            if sparse_on:
                _publish_model(model, dead_state["threshold"])
            o = SGD(model.parameters(), lr=0.1, momentum=0.9,
                    weight_decay=5e-4)
            o.zero_grad()
            plan, loss_t, _, reason = capture_training_step(model, xb, yb)
            if plan is None:
                raise RuntimeError(f"step capture failed: {reason}")
            loss_t.backward()

            def run():
                workspace.config.sparse_compute = sparse_on
                o.zero_grad()
                plan.run(xb, yb)

            return plan, run

        plan_d, run_d = build(m_d, False)
        plan_s, run_s = build(m_s, True)
        step = _measure_interleaved_same_engine(
            run_d, run_s, step_rounds, step_iters, warmup=step_warmup)
        loss_d, logits_d = plan_d.run(xb, yb)
        loss_s, logits_s = plan_s.run(xb, yb)
        step_bit = bool(np.array_equal(loss_d, loss_s)
                        and np.array_equal(logits_d, logits_s))
        ab_stats = sparse.STATS.as_dict()
        decisions = ab_stats.pop("decisions")
        gate_ok = all(d["measured_gain"] >= 0.95
                      for d in decisions if d["accepted"])

        # Predicted-gain curve for a representative QUICK conv GEMM
        # (conv3x3_s1_c12: N=32, C=K=12, 6x6 output, so CRS=108, P=36).
        from repro.costmodel import sparse_crossover_curve
        n_, k_, crs_, p_ = 32, 12, 108, 36
        flops = 2.0 * n_ * k_ * crs_ * p_
        byts = 4.0 * (n_ * crs_ * p_ + k_ * crs_ + n_ * k_ * p_)
        curve = sparse_crossover_curve(flops, byts)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
        sparse.clear()
        sparse.STATS.reset()
        (workspace.config.sparse_compute,
         workspace.config.mem_plan) = saved
        workspace.invalidate()
    return {
        "meta": {
            "workload": "resnet32 @ QUICK scale (hw=12, width_mult=0.375, "
                        "batch=32), PruneTrain schedule with zero_sparse "
                        "(no surgery)",
            "before": "dense compiled path (sparse_compute off)",
            "after": "sparsity-aware compute paths: dead-channel column "
                     "skipping + compacted backward GEMMs behind the "
                     "measured cost-model gate",
            "methodology": "interleaved A/B rounds, best-of-N per side; "
                           "full schedule, resume, and A/B step all "
                           "verified bit-identical vs dense; optimizer "
                           "update excluded from the timed region (state "
                           "stationarity; identical work both sides)",
        },
        "schedule": {
            "epochs": epochs, "reconfig_interval": 2,
            "threshold": threshold, "losses": losses_s,
            "bit_identical": bool(schedule_bit),
            "resume_bit_identical": bool(resume_bit),
            "sparse_stats": schedule_stats,
        },
        "dead_state": dead_state,
        "train_step": {
            "warmup_steps": step_warmup, "steps_per_round": step_iters,
            "rounds": step_rounds, **step,
        },
        "step_bit_identical": step_bit,
        "sparse_stats": {k: v for k, v in ab_stats.items()},
        "decisions": decisions,
        "gate_never_slower_ok": bool(gate_ok),
        "bit_identical": bool(schedule_bit and resume_bit and step_bit),
        "crossover_curve_example": curve,
    }


def build_bench_index() -> dict:
    """Consolidate every results/BENCH_*.json into BENCH_index.json."""
    index = {}
    files = sorted(os.listdir(RESULTS_DIR)) \
        if os.path.isdir(RESULTS_DIR) else []
    for fname in files:
        if not (fname.startswith("BENCH_") and fname.endswith(".json")) \
                or fname == "BENCH_index.json":
            continue
        path = os.path.join(RESULTS_DIR, fname)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            continue
        entry = {"file": fname}
        meta = payload.get("meta", {})
        for key in ("workload", "before", "after"):
            if key in meta:
                entry[key] = meta[key]
        step = payload.get("train_step", {})
        if "speedup" in step:
            entry["train_step_speedup"] = step["speedup"]
        if "bit_identical" in payload:
            entry["bit_identical"] = payload["bit_identical"]
        index[fname[len("BENCH_"):-len(".json")]] = entry
    return {"benchmarks": index}


def _measure_pair(make_workload: Callable[[np.random.Generator],
                                          Callable[[], None]],
                  rounds: int, number: int) -> Dict[str, float]:
    """Interleaved A/B of one kernel workload (fresh instance per engine)."""
    with baseline_engine():
        run_before = make_workload(np.random.default_rng(0))
    run_after = make_workload(np.random.default_rng(0))
    out = _measure_interleaved(run_before, run_after, rounds, number)
    workspace.invalidate()
    return out


def run_bench(repeats: int = 5, number: int = 3,
              step_warmup: int = 3, step_iters: int = 5,
              step_rounds: int = 8) -> dict:
    """Run every benchmark; returns the BENCH_engine.json payload."""
    results: dict = {
        "meta": {
            "workload": "resnet32 @ QUICK scale (hw=12, width_mult=0.375, "
                        "batch=32)",
            "before": "seed engine (im2col conv, unfused BN/ReLU, no "
                      "workspace pool)",
            "after": "optimized engine (gather-once batched-GEMM conv, "
                     "fused BN-ReLU / add-ReLU, workspace pool, gradient "
                     "donation, in-place SGD)",
            "methodology": "interleaved A/B rounds, best-of-N per engine "
                           "(robust to shared-host noise)",
        },
        "micro": {},
    }

    for name, n, ci, hw, co, k, stride, pad in CONV_SHAPES:
        def make(rng, a=(n, ci, hw, co, k, stride, pad)):
            return _conv_workload(*a, rng)
        results["micro"][name] = _measure_pair(make, repeats, number)

    results["micro"]["bn_relu"] = _measure_pair(
        _bn_relu_workload, repeats, number)

    # End-to-end training step, steady-state: one model+optimizer instance
    # per engine (so momentum buffers and pooled shapes stay stationary),
    # warmed up, then timed in alternating rounds.
    with baseline_engine():
        run_before = _train_step_workload(np.random.default_rng(1))
    run_after = _train_step_workload(np.random.default_rng(1))
    step = _measure_interleaved(run_before, run_after,
                                step_rounds, step_iters, warmup=step_warmup)
    pool = workspace.POOL.stats.as_dict()
    workspace.invalidate()

    results["train_step"] = {
        "warmup_steps": step_warmup, "steps_per_round": step_iters,
        "rounds": step_rounds, **step,
    }
    results["workspace_pool"] = pool
    return results


def write_results(results: dict, path: str = OUT_PATH) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    return path


def main() -> None:
    results = run_bench()
    path = write_results(results)
    step = results["train_step"]
    print(f"train step: {step['before_ms']:.1f} ms -> "
          f"{step['after_ms']:.1f} ms ({step['speedup']:.2f}x)")
    for name, row in results["micro"].items():
        print(f"{name:18s} {row['before_ms']:8.3f} -> {row['after_ms']:8.3f} "
              f"ms ({row['speedup']:.2f}x)")
    print(f"wrote {path}")

    compile_results = run_compile_bench()
    cpath = write_results(compile_results, OUT_PATH_COMPILE)
    cstep = compile_results["train_step"]
    print(f"compiled step: {cstep['before_ms']:.1f} ms (eager) -> "
          f"{cstep['after_ms']:.1f} ms (replay) ({cstep['speedup']:.2f}x)")
    print(f"wrote {cpath}")

    memplan_results = run_memplan_bench()
    mpath = write_results(memplan_results, OUT_PATH_MEMPLAN)
    mstep = memplan_results["train_step"]
    mem = memplan_results["memory"]
    print(f"planned step: {mstep['before_ms']:.1f} ms (private) -> "
          f"{mstep['after_ms']:.1f} ms (arena) ({mstep['speedup']:.2f}x), "
          f"{mem['plan_private_bytes'] / 1e6:.1f} MB -> "
          f"{mem['arena_bytes'] / 1e6:.1f} MB "
          f"({100 * mem['savings_fraction']:.1f}% saved), "
          f"bit_identical={memplan_results['bit_identical']}")
    print(f"wrote {mpath}")

    parallel_results = run_parallel_bench()
    ppath = write_results(parallel_results, OUT_PATH_PARALLEL)
    pstep = parallel_results["train_step"]
    pmodel = parallel_results["schedule_model"]
    print(f"parallel step: {pstep['before_ms']:.1f} ms (serial) -> "
          f"{pstep['after_ms']:.1f} ms (threaded) measured "
          f"({pstep['speedup']:.2f}x on {parallel_results['host_cpus']} "
          f"cpus), modeled {pmodel['modeled_speedup']:.2f}x at "
          f"{parallel_results['workers']} workers, "
          f"bit_identical={parallel_results['bit_identical']}")
    print(f"wrote {ppath}")

    sparse_results = run_sparse_bench()
    spath = write_results(sparse_results, OUT_PATH_SPARSE)
    sstep = sparse_results["train_step"]
    dstate = sparse_results["dead_state"]
    print(f"sparse step: {sstep['before_ms']:.1f} ms (dense) -> "
          f"{sstep['after_ms']:.1f} ms (sparse) ({sstep['speedup']:.2f}x) "
          f"at {100 * dstate['channel_dead_fraction']:.0f}% dead channels, "
          f"bit_identical={sparse_results['bit_identical']}, "
          f"gate_never_slower_ok={sparse_results['gate_never_slower_ok']}")
    print(f"wrote {spath}")

    index = build_bench_index()
    ipath = write_results(index, OUT_PATH_INDEX)
    print(f"wrote {ipath} ({len(index['benchmarks'])} benchmarks)")


if __name__ == "__main__":
    main()
