"""Perf smoke test: the optimized engine must beat the seed engine.

Runs a shortened version of the ``bench_engine`` harness (same workloads,
fewer repetitions) and writes ``results/BENCH_engine.json`` so CI can upload
it as an artifact.  The assertion bar here is deliberately below the
acceptance-grade 1.5x (measured by the full ``python
benchmarks/perf/bench_engine.py`` run and committed in the results file):
CI machines are noisy and a smoke test should not flake on scheduler
jitter — it only guards against the optimizations regressing to parity.
"""

import json
import os

import bench_elastic
import bench_engine
import bench_serve


def test_engine_speedup_smoke():
    results = bench_engine.run_bench(repeats=3, number=2,
                                     step_warmup=2, step_iters=3,
                                     step_rounds=5)
    path = bench_engine.write_results(results)
    assert os.path.exists(path)
    with open(path) as fh:
        written = json.load(fh)

    step = written["train_step"]
    assert step["before_ms"] > 0 and step["after_ms"] > 0
    assert step["speedup"] > 1.15, (
        f"optimized engine no faster than seed: {step}")

    # The pool must actually be exercised by the training step, and the
    # steady state must be hit-dominated (misses only populate it).
    pool = written["workspace_pool"]
    assert pool["hits"] > pool["misses"] > 0

    for name, row in written["micro"].items():
        assert row["before_ms"] > 0 and row["after_ms"] > 0, name


def test_compiled_step_speedup_smoke():
    """Compiled replay must never be slower than eager stepping.

    The acceptance-grade bar (>= 1.15x, measured by the full bench run) is
    asserted on the committed ``results/BENCH_compile.json``; at CI-smoke
    repetition counts the guard is parity, same rationale as above.
    """
    results = bench_engine.run_compile_bench(step_warmup=2, step_iters=3,
                                             step_rounds=5)
    path = bench_engine.write_results(results,
                                      bench_engine.OUT_PATH_COMPILE)
    assert os.path.exists(path)
    with open(path) as fh:
        written = json.load(fh)

    step = written["train_step"]
    assert step["before_ms"] > 0 and step["after_ms"] > 0
    assert step["speedup"] > 1.0, (
        f"compiled step slower than eager: {step}")


def test_memplan_parity_and_savings_smoke():
    """Arena-planned plans must match the private layout bit-for-bit,
    cut the resident plan footprint by >= 20%, and hold step parity.

    The acceptance-grade speed bar (>= 1.0x) is asserted on the committed
    ``results/BENCH_memplan.json`` from the full bench run; the CI-smoke
    speed guard allows 10% scheduler noise.  The bit-identity and savings
    checks are deterministic and asserted at full strength.
    """
    results = bench_engine.run_memplan_bench(step_warmup=2, step_iters=3,
                                             step_rounds=5,
                                             batch_schedule=False)
    path = bench_engine.write_results(results,
                                      bench_engine.OUT_PATH_MEMPLAN)
    assert os.path.exists(path)
    with open(path) as fh:
        written = json.load(fh)

    assert written["bit_identical"], "planner on/off replays diverged"
    mem = written["memory"]
    assert mem["arena_bytes"] <= 0.8 * mem["plan_private_bytes"], mem
    assert mem["liveness_peak_bytes"] <= mem["arena_bytes"]
    step = written["train_step"]
    assert step["speedup"] > 0.9, (
        f"arena-planned step much slower than private layout: {step}")


def test_elastic_overlap_parity_and_gap_smoke():
    """The elastic engine's overlapped zero-copy exchange must stay
    bit-identical to the in-process sim (asserted inside ``run_bench`` for
    every flavor — a diverging engine fails here, not just slows down) and
    the elastic/sim step-time gap must stay closed.

    The acceptance-grade bar is <= 1.1x (measured by the full
    ``benchmarks/perf/bench_elastic.py`` run and committed in
    ``results/BENCH_elastic.json``; currently under 1.0x — the forked
    workers beat the sequential sim).  At CI-smoke repetition counts on a
    noisy shared host the guard is 1.35x: it catches a regression to the
    pre-overlap ~1.46x orchestration tax without flaking on scheduler
    jitter.  The overlap leg must also actually exchange bucket-wise."""
    results = bench_elastic.run_bench(warmup=2, iters=3, rounds=3)
    path = bench_elastic.write_results(results)
    assert os.path.exists(path)
    with open(path) as fh:
        written = json.load(fh)

    step = written["train_step"]
    assert step["sim_ms"] > 0 and step["elastic_ms"] > 0
    assert step["elastic_over_sim"] < 1.35, (
        f"elastic engine regressed toward the pre-overlap gap: {step}")
    overlap = step["legs"]["overlap"]["comm"]
    assert overlap["buckets_reduced"] > 0
    assert overlap["monolithic_reduces"] == 0
    serial = step["legs"]["serial_comm"]["comm"]
    assert serial["monolithic_reduces"] > 0


def test_parallel_replay_parity_smoke():
    """Level-scheduled replay must match serial replay bit-for-bit and the
    schedule must expose real parallelism.

    Bit-identity and the modeled critical-path speedup are deterministic
    up to timing noise in the thunk samples and asserted at (near) full
    strength — the acceptance-grade modeled bar is >= 1.25x at 4 workers
    (committed ``results/BENCH_parallel.json``), smoke allows sampling
    noise down to 1.15x.  The *measured* wall-clock guard is loose and
    one-sided: CI hosts may have a single core, where threaded replay
    legitimately pays dispatch overhead with no speedup available — it
    only catches pathological (>2x) slowdowns.
    """
    results = bench_engine.run_parallel_bench(workers=4, bit_steps=2,
                                              step_warmup=2, step_iters=3,
                                              step_rounds=5)
    path = bench_engine.write_results(results,
                                      bench_engine.OUT_PATH_PARALLEL)
    assert os.path.exists(path)
    with open(path) as fh:
        written = json.load(fh)

    assert written["bit_identical"], "parallel/serial replays diverged"
    model = written["schedule_model"]
    assert model["max_width"] >= 2, model
    assert model["parallel_levels"] > 0, model
    assert model["modeled_speedup"] >= 1.15, (
        f"schedule exposes too little parallelism: {model}")
    assert written["pool"]["threads"] >= 4
    step = written["train_step"]
    assert step["speedup"] > 0.5, (
        f"threaded replay pathologically slow: {step}")


def test_sparse_compute_parity_smoke():
    """Sparse compute paths: bit-identity at full strength, loose speed bar.

    The schedule, kill/resume, and A/B-step bit-identity checks are
    deterministic and asserted at full strength — a sparse path that
    diverges from dense fails here, not just slows down.  So is the gate's
    never-slower guarantee (an accepted decision whose own probe measured
    the sparse pipeline >5% slower than dense would be a gate bug).  The
    acceptance-grade speed bar (>= 1.10x at >= 40% dead channels) is
    asserted on the committed ``results/BENCH_sparse.json`` from the full
    bench run; the CI-smoke guard only catches the sparse engine becoming
    pathologically slower than dense.
    """
    results = bench_engine.run_sparse_bench(step_warmup=2, step_iters=3,
                                            step_rounds=5)
    path = bench_engine.write_results(results, bench_engine.OUT_PATH_SPARSE)
    assert os.path.exists(path)
    with open(path) as fh:
        written = json.load(fh)

    assert written["schedule"]["bit_identical"], \
        "sparse schedule diverged from dense"
    assert written["schedule"]["resume_bit_identical"], \
        "killed+resumed sparse run diverged"
    assert written["step_bit_identical"], "sparse A/B step diverged"
    assert written["gate_never_slower_ok"], (
        "gate accepted a sparse pipeline its own probe measured >5% "
        "slower than dense")
    assert written["dead_state"]["channel_dead_fraction"] >= 0.4, \
        written["dead_state"]
    assert written["schedule"]["sparse_stats"]["publishes"] > 0
    assert written["decisions"], "gate recorded no decisions"
    step = written["train_step"]
    assert step["before_ms"] > 0 and step["after_ms"] > 0
    assert step["speedup"] > 0.9, (
        f"sparse step pathologically slower than dense: {step}")

    index = bench_engine.build_bench_index()
    ipath = bench_engine.write_results(index, bench_engine.OUT_PATH_INDEX)
    assert os.path.exists(ipath)
    assert "sparse" in index["benchmarks"]


def test_serve_parity_and_latency_smoke():
    """Serving benchmark at reduced load: the batched-vs-unbatched parity
    gate must be clean and the latency/QPS report well-formed.

    Parity is deterministic (bitwise, every dispatch path) and asserted at
    full strength.  Throughput numbers are load-bearing only directionally
    on a shared CI host: the pruned model must not serve *less* capacity
    than the dense one (the full-strength 1.1-1.6x Tab. 2 bar is measured
    by ``python benchmarks/perf/bench_serve.py`` and committed in
    ``results/BENCH_serve.json``).
    """
    results = bench_serve.run_serve_bench(n_requests=80,
                                          load_fracs=(0.25, 0.6),
                                          max_batch=8)
    path = bench_serve.write_results(results)
    assert os.path.exists(path)
    with open(path) as fh:
        written = json.load(fh)

    # the CI gate: batched served outputs bit-identical to unbatched
    # eager forward, for both checkpoints, on every dispatch path
    for variant in ("dense", "pruned"):
        parity = written[variant]["parity"]
        assert parity["bit_identical"], f"{variant} parity broken: {parity}"
        for check in ("exact_batch", "padded_group", "tail_shape",
                      "through_server"):
            assert parity[check], f"{variant} {check} not bit-identical"
        for load in written[variant]["loads"]:
            assert load["p50_ms"] > 0 and load["p99_ms"] >= load["p50_ms"]
            assert load["achieved_qps"] > 0
        stats = written[variant]["serve_stats"]
        assert stats["eager_rows"] == 0, (
            f"{variant} fell back to eager serving: {stats}")
    assert written["speedup"]["bit_identical"]
    assert written["speedup"]["capacity"] > 0.9, (
        f"pruned checkpoint serves less than dense: {written['speedup']}")
