"""Elastic data-parallel benchmark: multi-process engine vs in-process sim.

Times one synchronous data-parallel training step of ResNet-32 at the
QUICK scale under both `workers > 1` backends:

* ``sim`` — :func:`repro.distributed.data_parallel_step`, the sequential
  in-process simulation (K backwards on one model, ring allreduce over
  local arrays);
* ``elastic`` — :class:`repro.distributed.ElasticEngine`, K forked worker
  processes computing shards concurrently and exchanging gradients through
  shared-memory buffers with the same ring schedule.

Both backends produce bit-identical results (asserted here — a benchmark
comparing diverging computations would be meaningless), so the numbers
isolate pure orchestration cost: process scheduling, the parameter
broadcast, pipe traffic for shards, and coordinator stall waiting on the
slowest worker.  Because NumPy releases the GIL-free work to separate
*processes*, elastic steps can finish faster than the sequential
simulation once per-shard compute dominates the IPC overhead.

Run directly::

    PYTHONPATH=src python benchmarks/perf/bench_elastic.py

writes ``results/BENCH_elastic.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.data import make_synthetic
from repro.distributed import ElasticEngine, data_parallel_step
from repro.nn import resnet32
from repro.optim import SGD

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "results")
OUT_PATH = os.path.join(RESULTS_DIR, "BENCH_elastic.json")

QUICK = dict(width_mult=0.375, input_hw=12)


def _fresh():
    m = resnet32(10, **QUICK, seed=0)
    m.train()
    return m, SGD(m.parameters(), 0.1, momentum=0.9, weight_decay=5e-4)


def _time_rounds(fn, warmup: int, iters: int, rounds: int) -> float:
    """Best-of-rounds mean ms per call (same methodology as bench_engine)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best * 1e3


def run_bench(workers: int = 2, batch: int = 64, warmup: int = 3,
              iters: int = 5, rounds: int = 4) -> dict:
    ds = make_synthetic(10, batch, hw=12, noise=0.8, seed=0)
    x, y = ds.x, ds.y

    # parity check first: one step on each backend from identical state
    m_sim, opt_sim = _fresh()
    res_sim, _ = data_parallel_step(m_sim, x, y, workers=workers)
    m_ela, opt_ela = _fresh()
    engine = ElasticEngine(m_ela, workers=workers)
    res_ela = engine.step(x, y)
    assert float(res_sim.loss) == float(res_ela.loss), \
        "backends diverged; benchmark comparison would be meaningless"
    for p, q in zip(m_sim.parameters(), m_ela.parameters()):
        assert np.array_equal(p.grad, q.grad)

    sim_ms = _time_rounds(
        lambda: data_parallel_step(m_sim, x, y, workers=workers),
        warmup, iters, rounds)
    stall0 = engine.total_stall_seconds
    ela_ms = _time_rounds(lambda: engine.step(x, y), warmup, iters, rounds)
    stall = engine.total_stall_seconds - stall0
    steps = warmup + iters * rounds
    engine.shutdown()

    return {
        "workload": {"model": "resnet32-QUICK", "batch": batch,
                     "workers": workers},
        "train_step": {
            "sim_ms": sim_ms,
            "elastic_ms": ela_ms,
            "elastic_over_sim": ela_ms / sim_ms,
            "comm_bytes_per_worker": float(res_ela.comm_bytes_per_worker),
            "stall_ms_per_step": stall / steps * 1e3,
        },
    }


def write_results(results: dict, path: str = OUT_PATH) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    return path


def main() -> None:
    results = run_bench()
    path = write_results(results)
    step = results["train_step"]
    print(f"sim {step['sim_ms']:.2f} ms  elastic {step['elastic_ms']:.2f} ms "
          f"({step['elastic_over_sim']:.2f}x, "
          f"stall {step['stall_ms_per_step']:.2f} ms/step)")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
