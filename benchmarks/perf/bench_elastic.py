"""Elastic data-parallel benchmark: multi-process engine vs in-process sim.

Times one synchronous data-parallel training step of ResNet-32 at the
QUICK scale under the `workers > 1` backends:

* ``sim`` — :func:`repro.distributed.data_parallel_step`, the sequential
  in-process simulation (K eager backwards on one model, ring allreduce
  over local arrays);
* ``elastic`` legs — :class:`repro.distributed.ElasticEngine`, K forked
  worker processes computing shards concurrently and exchanging gradients
  through shared memory, in three flavors:

  - ``seed``: eager workers, explicit gradient pack, one monolithic ring
    after all workers finish (the engine as originally landed);
  - ``serial_comm``: compiled worker replay with zero-copy gradient sinks
    (backward writes straight into the shared segments), still one
    monolithic ring at the end;
  - ``overlap``: the full overlapped zero-copy exchange — bucketed ring
    reduces launched from inside the compiled plan while backward still
    runs.

Every flavor produces bit-identical gradients (asserted here — a benchmark
comparing diverging computations would be meaningless), so the numbers
isolate orchestration cost: process scheduling, the parameter broadcast,
gradient packing vs zero-copy, pipe traffic, coordinator stall, and the
comm schedule.  ``elastic_over_sim`` reports the default (overlap) flavor.

Run directly::

    PYTHONPATH=src python benchmarks/perf/bench_elastic.py

writes ``results/BENCH_elastic.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.data import make_synthetic
from repro.distributed import (COMM_STATS, ElasticEngine, data_parallel_step)
from repro.nn import resnet32
from repro.optim import SGD

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "results")
OUT_PATH = os.path.join(RESULTS_DIR, "BENCH_elastic.json")

QUICK = dict(width_mult=0.375, input_hw=12)

#: engine flavors benchmarked side by side (ordered seed -> full feature)
LEGS = {
    "seed": dict(comm_overlap=False, zero_copy=False, compile_steps=False),
    "serial_comm": dict(comm_overlap=False, zero_copy=True,
                        compile_steps=True),
    "overlap": dict(comm_overlap=True, zero_copy=True, compile_steps=True),
}


def _fresh():
    m = resnet32(10, **QUICK, seed=0)
    m.train()
    return m, SGD(m.parameters(), 0.1, momentum=0.9, weight_decay=5e-4)


def _time_rounds(fn, warmup: int, iters: int, rounds: int) -> float:
    """Best-of-rounds mean ms per call (same methodology as bench_engine)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best * 1e3


def run_bench(workers: int = 2, batch: int = 64, warmup: int = 3,
              iters: int = 5, rounds: int = 4) -> dict:
    ds = make_synthetic(10, batch, hw=12, noise=0.8, seed=0)
    x, y = ds.x, ds.y

    # reference: one sim step (params never change in this benchmark, so
    # every later step recomputes exactly these gradients)
    m_sim, _ = _fresh()
    res_sim, _ = data_parallel_step(m_sim, x, y, workers=workers)
    ref_grads = [p.grad.copy() for p in m_sim.parameters()]
    sim_ms = _time_rounds(
        lambda: data_parallel_step(m_sim, x, y, workers=workers),
        warmup, iters, rounds)

    legs = {}
    for name, kw in LEGS.items():
        m_ela, _ = _fresh()
        COMM_STATS.reset()
        with ElasticEngine(m_ela, workers=workers, **kw) as engine:
            res_ela = engine.step(x, y)
            assert float(res_sim.loss) == float(res_ela.loss), \
                f"{name}: backends diverged; comparison would be meaningless"
            assert float(res_sim.comm_bytes_per_worker) == \
                float(res_ela.comm_bytes_per_worker), name
            for g, q in zip(ref_grads, m_ela.parameters()):
                assert np.array_equal(g, q.grad), name
            stall0 = engine.total_stall_seconds
            ms = _time_rounds(lambda: engine.step(x, y),
                              warmup, iters, rounds)
            stall = engine.total_stall_seconds - stall0
            steps = warmup + iters * rounds
        legs[name] = {
            "ms": ms,
            "stall_ms_per_step": stall / steps * 1e3,
            "comm": COMM_STATS.as_dict(),
        }

    ela_ms = legs["overlap"]["ms"]
    return {
        "workload": {"model": "resnet32-QUICK", "batch": batch,
                     "workers": workers},
        "train_step": {
            "sim_ms": sim_ms,
            "elastic_ms": ela_ms,
            "elastic_over_sim": ela_ms / sim_ms,
            "comm_bytes_per_worker": float(res_sim.comm_bytes_per_worker),
            "stall_ms_per_step": legs["overlap"]["stall_ms_per_step"],
            "legs": legs,
        },
    }


def write_results(results: dict, path: str = OUT_PATH) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    return path


def main() -> None:
    results = run_bench()
    path = write_results(results)
    step = results["train_step"]
    print(f"sim {step['sim_ms']:.2f} ms")
    for name, leg in step["legs"].items():
        print(f"elastic[{name}] {leg['ms']:.2f} ms "
              f"({leg['ms'] / step['sim_ms']:.2f}x, "
              f"stall {leg['stall_ms_per_step']:.2f} ms/step)")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
