"""Tab. 2 — measured inference throughput of pruned vs dense models."""

import numpy as np

from repro.experiments import tab2

from conftest import emit, run_once


def test_tab2_inference_throughput(benchmark, scale):
    result = run_once(benchmark, lambda: tab2.run(scale))
    emit("tab2", tab2.report(result))

    b1, b2 = result["batches"]
    speedups = []
    for r in result["rows"]:
        speedups.extend([r[f"speedup_{b1}"], r[f"speedup_{b2}"]])
    # pruned models are faster on average (paper: 1.1-1.6x)
    assert np.mean(speedups) > 1.0, f"mean speedup {np.mean(speedups):.2f}"
    # the large batch utilizes hardware at least as well as the small one
    large_batch = [r[f"speedup_{b2}"] for r in result["rows"]]
    small_batch = [r[f"speedup_{b1}"] for r in result["rows"]]
    assert np.mean(large_batch) > 0.8 * np.mean(small_batch)
    # the measurement went through serve plan replays, not an eager loop
    for r in result["rows"]:
        assert r["served_replays"] > 0, r
        assert r["served_eager_rows"] == 0, r
