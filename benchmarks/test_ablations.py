"""Ablation benches for DESIGN.md's called-out design choices."""

from repro.experiments import ablations

from conftest import emit, run_once


def test_ablation_penalty_scaling(benchmark, scale):
    result = run_once(benchmark, lambda: ablations.run_penalty_scaling(scale))
    emit("ablation_penalty_scaling", ablations.report_penalty_scaling(result))
    glob = next(r for r in result["rows"] if r["variant"] == "global λ")
    scaled = next(r for r in result["rows"] if r["variant"] == "size-scaled")
    # both must prune; the global-λ design prioritizes FLOPs reduction:
    # it achieves at least as good a FLOPs/params tradeoff slope
    assert glob["flops_ratio"] < 1.0
    assert scaled["flops_ratio"] < 1.0
    glob_slope = glob["flops_ratio"] / max(glob["param_ratio"], 1e-6)
    scaled_slope = scaled["flops_ratio"] / max(scaled["param_ratio"], 1e-6)
    assert glob_slope <= scaled_slope + 0.35


def test_ablation_lambda_setup(benchmark, scale):
    result = run_once(benchmark, lambda: ablations.run_lambda_setup(scale))
    emit("ablation_lambda_setup", ablations.report_lambda_setup(result))
    rows = {r["variant"]: r for r in result["rows"]}
    auto = rows["Eq. 3 setup"]
    weak = rows["x0.1 (too weak)"]
    strong = rows["x10 (too strong)"]
    # Eq. 3 lands in the useful region on the first try
    assert auto["flops_ratio"] < 0.9
    assert auto["acc_delta"] > -0.12
    # too weak barely prunes relative to the systematic setup
    assert weak["flops_ratio"] > auto["flops_ratio"]
    # too strong prunes more but costs accuracy (or collapses)
    assert strong["flops_ratio"] <= auto["flops_ratio"] + 0.02
    assert strong["acc_delta"] <= auto["acc_delta"] + 0.02


def test_ablation_finetune(benchmark, scale):
    result = run_once(benchmark, lambda: ablations.run_finetune(scale))
    emit("ablation_finetune", ablations.report_finetune(result))
    # fine-tuning must not hurt, and typically recovers accuracy (paper:
    # +0.3% for strong regularization)
    assert result["ft_acc"] >= result["pt_acc"] - 0.03
    assert result["inference_flops"] < 1.0


def test_ablation_lr_scaling(benchmark, scale):
    result = run_once(benchmark, lambda: ablations.run_lr_scaling(scale))
    emit("ablation_lr_scaling", ablations.report_lr_scaling(result))
    rows = {r["variant"]: r for r in result["rows"]}
    with_rescale = rows["with LR rescale"]
    without = rows["no LR rescale"]
    # both grew the batch
    assert with_rescale["final_batch"] > 32
    assert without["final_batch"] > 32
    # the coupled LR adjustment must not be (much) worse than uncoupled;
    # paper: it preserves learning quality
    assert with_rescale["acc"] >= without["acc"] - 0.08
